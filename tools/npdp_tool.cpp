// npdp — command-line front end to the cellnpdp library.
//
//   npdp solve     --n 4096 [--backend blocked-parallel] [--kernel simd128]
//                  [--block 64] [--threads 8] [--seed 1] [--deadline-ms 50]
//                  [--semiring min-plus|max-plus|counting|viterbi-log]
//                  [--maxplus] [--save table.bin] [--retries 4]
//                  [--fault-plan plan.json] [--fault-log fired.json]
//                  [--trace out.json] [--metrics out.json] [--report]
//   npdp backends  list the registered solver backends, capabilities, and
//                  health (circuit-breaker state)
//   npdp check-trace --file out.json [--min-workers 1] [--expect-tasks N]
//   npdp info      --file table.bin
//   npdp fold      --seq ACGU... | --random 500 [--seed 7] [--threads 4]
//   npdp parse     --parens "(()())" | --anbn aaabbb
//   npdp simulate  --n 4096 [--spes 16] [--block 88] [--dp] [--trace out.csv]
//   npdp cluster   --n 4096 [--nodes 8] [--bw-gbps 3] [--lat-us 10]
//   npdp dist-solve --rank R --peers host:port,host:port,... [--n 4096]
//                  [--seed 1] [--block 64] [--kernel simd128] [--threads 1]
//                  [--semiring min-plus|max-plus|counting|viterbi-log]
//                  [--save table.bin] [--stats-port 0] [--port-file FILE]
//                  [--connect-timeout-ms 10000] [--stall-timeout-ms 60000]
//                  (one peer of a P-process distributed solve; every peer
//                  must pass the same --peers list, --n, --seed, --block
//                  and --semiring, and its own --rank; docs/distributed.md)
//   npdp model     --n 4096 [--spes 16]
//   npdp serve     --requests <file|-> [--workers 4] [--queue 256]
//                  [--policy block|reject|shed] [--cache 1024] [--batch 8]
//                  [--backend blocked-serial] [--retries 3] [--breaker]
//                  [--fallback reference] [--hedge] [--fault-plan plan.json]
//   npdp bench-serve --requests 1000 [--workers 4] [--mode closed|open]
//                  [--concurrency 8] [--rate 500] [--distinct 25]
//                  [--policy block] [--json-dir .] [--backend blocked-serial]
//                  [--retries 3] [--breaker] [--fallback NAME] [--hedge]
//                  [--fault-plan plan.json]
//   npdp net-serve [--host 127.0.0.1] [--port 9377] [--reactors 2]
//                  [--max-frame 1048576] [--idle-timeout-ms 30000]
//                  [--drain-timeout-ms 5000] [--port-file FILE]
//                  [--duration-ms 0] [--trace FILE] [--request-log FILE]
//                  [--log-sample N] + all serve service flags, including
//                  [--tenants "ID:name=N:rate=R:burst=B:weight=W:
//                  cache-kb=K/ID2:..."] for per-tenant QoS policies
//                  (runs until SIGINT/SIGTERM, then drains gracefully)
//   npdp net-bench --port 9377 [--host 127.0.0.1] [--connections 4]
//                  [--targets host:port,host:port,...] [--rate 0]
//                  [--duration 2] [--requests 0] [--mix chain]
//                  [--semiring NAME|mix] [--size 32] [--distinct 16]
//                  [--deadline-ms 0] [--tenant 0]
//                  [--priority 0] [--backend NAME] [--seed 1] [--json-dir .]
//                  [--connect-timeout-ms 0] [--trace FILE] [--trace-sample R]
//                  (closed loop when --rate 0; writes BENCH_net.json with
//                  per-target status counts when --targets names several;
//                  open-loop runs also report coordinated-omission-
//                  corrected p50/p99 and the count of slipped intervals)
//   npdp net-route --replicas [name=]host:port,... [--host 127.0.0.1]
//                  [--port 9378] [--reactors 2] [--vnodes 64]
//                  [--max-attempts 3] [--probe-interval-ms 200]
//                  [--probe-timeout-ms 1000] [--connect-timeout-ms 1000]
//                  [--max-frame 1048576] [--idle-timeout-ms 30000]
//                  [--drain-timeout-ms 5000] [--port-file FILE]
//                  [--duration-ms 0] [--trace FILE]
//                  (consistent-hash router over net-serve replicas;
//                  runs until SIGINT/SIGTERM, then drains gracefully)
//   npdp top       --port 9377 [--host 127.0.0.1] [--interval-ms 1000]
//                  [--iterations 0] [--once] [--prom]
//                  (live stats view over the StatsRequest wire frame, with
//                  a per-tenant QoS table when the server runs tenanted;
//                  --prom dumps Prometheus text exposition instead)
//   npdp merge-traces --out merged.json --client a.json --server b.json
//   npdp check-trace --file out.json --chains [--min-chain-frac 0.99]
//                  (request-chain mode: validates trace-id correlation)
//
// Exit codes: 0 success, 1 runtime error, 2 unknown subcommand,
// 3 bad arguments (missing/duplicate/malformed flags, unknown --backend).
#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <future>
#include <iostream>
#include <iterator>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "apps/cyk/cyk.hpp"
#include "apps/zuker/fold.hpp"
#include "backend/solver_backend.hpp"
#include "bench_util/bench_config.hpp"
#include "bench_util/json_out.hpp"
#include "bench_util/table.hpp"
#include "cellsim/npdp_sim.hpp"
#include "cluster/cluster_sim.hpp"
#include "common/json.hpp"
#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "core/maxplus.hpp"
#include "core/solve.hpp"
#include "dist/in_process.hpp"
#include "dist/stats_endpoint.hpp"
#include "io/table_io.hpp"
#include "model/perf_model.hpp"
#include "net/client.hpp"
#include "net/loadgen.hpp"
#include "net/server.hpp"
#include "obs/exposition.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/request_log.hpp"
#include "obs/trace.hpp"
#include "obs/trace_export.hpp"
#include "resilience/circuit_breaker.hpp"
#include "router/router.hpp"
#include "resilience/fault_injector.hpp"
#include "serve/request.hpp"
#include "serve/response.hpp"
#include "serve/service.hpp"
#include "serve/tenant.hpp"

using namespace cellnpdp;

namespace {

/// Bad command-line arguments: missing, duplicate, or malformed flags.
/// Reported on stderr and mapped to exit code 3 (a distinct code from the
/// unknown-subcommand 2, so scripts can tell the two apart).
struct UsageError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

struct Args {
  std::map<std::string, std::string> kv;
  bool has(const std::string& k) const { return kv.count(k) > 0; }
  std::string get(const std::string& k, const std::string& dflt = "") const {
    auto it = kv.find(k);
    return it == kv.end() ? dflt : it->second;
  }
  /// Value of a required flag; UsageError when absent.
  std::string need(const std::string& k) const {
    auto it = kv.find(k);
    if (it == kv.end()) throw UsageError("missing required flag --" + k);
    return it->second;
  }
  long num(const std::string& k, long dflt) const {
    auto it = kv.find(k);
    return it == kv.end() ? dflt : std::atol(it->second.c_str());
  }
  double real(const std::string& k, double dflt) const {
    auto it = kv.find(k);
    return it == kv.end() ? dflt : std::atof(it->second.c_str());
  }
};

Args parse_args(int argc, char** argv, int first) {
  Args a;
  for (int i = first; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) continue;
    key = key.substr(2);
    if (a.kv.count(key) > 0)
      throw UsageError("duplicate flag --" + key);
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      a.kv[key] = argv[++i];
    } else {
      a.kv[key] = "1";
    }
  }
  return a;
}

KernelKind kernel_from(const std::string& s) {
  if (s == "scalar") return KernelKind::Scalar;
  if (s == "simd256") return KernelKind::Wide;
  return KernelKind::Native;
}

/// Registry lookup with the CLI's error convention: an unknown name is a
/// usage error (exit 3), with the known names in the message.
const backend::SolverBackend& backend_from(const std::string& name) {
  try {
    return backend::require_backend(name);
  } catch (const backend::UnknownBackendError& e) {
    throw UsageError(e.what());
  }
}

/// --fault-plan FILE: parses the plan and installs it as the process-wide
/// fault hook for the scope's lifetime (null when the flag is absent).
/// Malformed plans are usage errors (exit 3).
std::unique_ptr<resilience::FaultInjectionScope> fault_scope_from(
    const Args& a) {
  if (!a.has("fault-plan")) return nullptr;
  resilience::FaultPlan plan;
  std::string err;
  if (!resilience::fault_plan_from_file(a.get("fault-plan"), &plan, &err))
    throw UsageError("--fault-plan: " + err);
  return std::make_unique<resilience::FaultInjectionScope>(std::move(plan));
}

/// --fault-log FILE: dumps the fired-fault log (the replay-determinism
/// artifact) after a faulty run. Returns false on I/O failure.
bool write_fault_log(const Args& a, resilience::FaultInjectionScope* scope) {
  if (!a.has("fault-log") || scope == nullptr) return true;
  std::ofstream os(a.get("fault-log"));
  if (!os) {
    std::fprintf(stderr, "error: cannot write %s\n",
                 a.get("fault-log").c_str());
    return false;
  }
  scope->injector().write_log(os);
  return true;
}

int cmd_solve(const Args& a) {
  NpdpInstance<float> inst;
  inst.n = a.num("n", 1024);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(a.num("seed", 1));
  SemiringId sr = SemiringId::MinPlus;
  if (a.has("semiring") &&
      !semiring_from_name(a.get("semiring"), &sr))
    throw UsageError("unknown semiring '" + a.get("semiring") +
                     "' (min-plus|max-plus|counting|viterbi-log)");
  // --maxplus predates --semiring and stays as an alias; the engine runs
  // the native max-plus instantiation either way.
  if (a.has("maxplus")) sr = SemiringId::MaxPlus;
  inst.semiring = sr;
  inst.init = [seed, sr](index_t i, index_t j) {
    return semiring_init_value<float>(sr, seed, i, j);
  };
  NpdpOptions opts;
  opts.block_side = a.num("block", 64);
  opts.kernel = kernel_from(a.get("kernel", "simd128"));
  opts.threads = static_cast<std::size_t>(a.num("threads", 1));

  const std::string backend_name = a.get(
      "backend", opts.threads > 1 ? "blocked-parallel" : "blocked-serial");
  const backend::SolverBackend* be = &backend_from(backend_name);

  const bool tracing = a.has("trace");
  const bool want_report = a.has("report");
  if (tracing)
    obs::Tracer::instance().start(
        static_cast<std::size_t>(a.num("trace-buf", 1 << 18)));

  // Activated before the solve so every fault site below sees the plan;
  // kept alive until after the log is written.
  auto fault_scope = fault_scope_from(a);

  Stopwatch sw;
  SolveStats ss;
  SolveStats* ssp = (want_report || a.has("metrics")) ? &ss : nullptr;
  ExecutionContext ctx;
  ctx.tuning = opts;
  ctx.stats = ssp;
  if (a.has("deadline-ms"))
    ctx.cancel =
        CancelToken::after(std::chrono::milliseconds(a.num("deadline-ms", 0)));
  if (a.has("retries"))
    ctx.retry.max_attempts =
        std::max(1, static_cast<int>(a.num("retries", 1)));

  double value = 0, sim_s = 0;
  std::shared_ptr<BlockedTriangularMatrix<float>> table;
  {
    const backend::BackendResult r = be->solve(inst, ctx);
    if (r.status == SolveStatus::Cancelled) {
      if (tracing) obs::Tracer::instance().stop();
      write_fault_log(a, fault_scope.get());
      std::printf("cancelled (%s) after %s: partial table discarded\n",
                  cancel_reason_name(ctx.cancel.reason()),
                  fmt_seconds(sw.seconds()).c_str());
      return 1;
    }
    value = r.value;
    sim_s = r.sim_seconds;
    table = r.blocked;
  }
  const double s = sw.seconds();
  if (tracing) obs::Tracer::instance().stop();
  std::printf("solved n=%lld (%s: %s, %s, block %lld, %zu threads) in %s\n",
              static_cast<long long>(inst.n), backend_name.c_str(),
              std::string(kernel_kind_name(opts.kernel)).c_str(),
              std::string(semiring_name(sr)).c_str(),
              static_cast<long long>(opts.block_side), opts.threads,
              fmt_seconds(s).c_str());
  std::printf("d[0][n-1] = %g; %.2f G relax/s\n", value,
              double(npdp_relaxations(inst.n)) / s / 1e9);
  if (sim_s > 0)
    std::printf("simulated Cell time %s\n", fmt_seconds(sim_s).c_str());
  if (fault_scope != nullptr) {
    const resilience::FaultInjector& inj = fault_scope->injector();
    std::printf("faults injected:");
    for (int si = 0; si < kFaultSiteCount; ++si) {
      const auto site = static_cast<FaultSite>(si);
      if (inj.occurrences(site) == 0 && inj.fired_count(site) == 0) continue;
      std::printf(" %s=%lld/%lld", fault_site_name(site),
                  static_cast<long long>(inj.fired_count(site)),
                  static_cast<long long>(inj.occurrences(site)));
    }
    std::printf(" (fired/occurrences)\n");
    if (!write_fault_log(a, fault_scope.get())) return 1;
    if (a.has("fault-log"))
      std::printf("fault log written to %s\n", a.get("fault-log").c_str());
  }
  if (a.has("save")) {
    if (table == nullptr)
      throw UsageError("--save needs a backend producing a blocked table "
                       "(backend '" + backend_name + "' does not)");
    save_table_file(a.get("save"), *table);
    std::printf("saved to %s\n", a.get("save").c_str());
  }

  if (tracing) {
    const long events = obs::export_chrome_trace(a.get("trace"));
    if (events < 0) {
      std::fprintf(stderr, "error: cannot write %s\n",
                   a.get("trace").c_str());
      return 1;
    }
    std::printf("trace written to %s (%ld events; open in "
                "https://ui.perfetto.dev)\n",
                a.get("trace").c_str(), events);
    std::uint64_t dropped = 0;
    for (const auto& t : obs::Tracer::instance().snapshot())
      dropped += t.dropped;
    if (dropped > 0)
      std::printf("warning: %llu events dropped (ring full); rerun with a "
                  "larger --trace-buf\n",
                  static_cast<unsigned long long>(dropped));
  }
  if (a.has("metrics")) {
    // Fold the solve's work counters into the registry before dumping so
    // the snapshot carries engine phases alongside scheduler metrics.
    obs::metrics().counter("engine.kernel_calls").add(ss.engine.kernel_calls);
    obs::metrics().counter("engine.corner_relax").add(ss.engine.corner_relax);
    obs::metrics().counter("engine.diag_relax").add(ss.engine.diag_relax);
    obs::metrics()
        .counter("engine.cells_finalized")
        .add(ss.engine.cells_finalized);
    std::ofstream os(a.get("metrics"));
    if (!os) {
      std::fprintf(stderr, "error: cannot write %s\n",
                   a.get("metrics").c_str());
      return 1;
    }
    obs::metrics().write_json(os);
    std::printf("metrics written to %s\n", a.get("metrics").c_str());
  }
  if (want_report) {
    obs::UtilizationReport rep;
    rep.wall_seconds = ss.wall_seconds;
    rep.worker_busy = ss.worker_busy;
    if (tracing)
      rep.phases =
          obs::aggregate_phase_totals(obs::Tracer::instance().snapshot());
    ModelParams p;
    p.n1 = double(inst.n);
    p.cores = double(std::max<std::size_t>(1, opts.threads));
    p.n2_override = double(opts.block_side);
    print_utilization_report(std::cout, rep, p);
  }
  return 0;
}

/// Lists every backend in the registry with its capability columns plus a
/// health row (circuit-breaker state from the process-wide board) — the
/// discovery companion of --backend. A backend with no breaker yet is
/// healthy by definition; "open" means the breaker is currently refusing
/// it and requests take the degradation ladder.
int cmd_backends(const Args&) {
  std::printf("%-17s %-3s %-3s %-9s %-10s %-9s %-12s %-7s %-6s %-11s "
              "%-42s %-8s %-10s\n",
              "name", "sp", "dp", "weighted", "traceback", "parallel",
              "cancellable", "timing", "arena", "self-check", "semirings",
              "healthy", "breaker");
  auto yn = [](bool v) { return v ? "yes" : "-"; };
  for (const backend::SolverBackend* b :
       backend::BackendRegistry::instance().list()) {
    const backend::Capabilities c = b->caps();
    const resilience::CircuitBreaker* br =
        resilience::breakers().find(b->name());
    const bool healthy =
        br == nullptr || br->state() != resilience::BreakerState::Open;
    std::printf("%-17s %-3s %-3s %-9s %-10s %-9s %-12s %-7s %-6s %-11s "
                "%-42s %-8s %-10s\n",
                b->name(), yn(c.single_precision), yn(c.double_precision),
                yn(c.weighted), yn(c.traceback), yn(c.parallel),
                yn(c.cancellable), yn(c.timing_model), yn(c.arena),
                yn(c.self_checking),
                backend::semirings_string(c).c_str(), healthy ? "yes" : "no",
                br != nullptr ? resilience::breaker_state_name(br->state())
                              : "-");
  }
  return 0;
}

/// Validates a Chrome trace-event JSON file written by --trace: parses
/// it, checks every span is well-formed, and counts worker lanes and
/// scheduling-block task spans. Used by verify.sh so tracing cannot rot
/// silently.
int cmd_check_trace(const Args& a) {
  const std::string path = a.need("file");
  std::ifstream is(path);
  if (!is) {
    std::fprintf(stderr, "check-trace: cannot open %s\n", path.c_str());
    return 1;
  }
  std::string text((std::istreambuf_iterator<char>(is)),
                   std::istreambuf_iterator<char>());
  JsonValue root;
  std::string err;
  if (!json_parse(text, root, &err)) {
    std::fprintf(stderr, "check-trace: malformed JSON: %s\n", err.c_str());
    return 1;
  }
  if (!root.is_object() || !root.has("traceEvents") ||
      !root.at("traceEvents").is_array()) {
    std::fprintf(stderr, "check-trace: missing traceEvents array\n");
    return 1;
  }
  if (a.has("chains")) {
    // Request-chain mode: correlate cat:"req" events by trace_id across
    // processes (usually a merge-traces output) instead of validating
    // engine spans. Success statuses (Ok, OkCached, Degraded) must show
    // solver or cache work; failures legitimately skip it.
    const obs::ChainSummary cs = obs::analyze_request_chains(root, {0, 1, 7});
    const double frac =
        cs.with_client > 0 ? double(cs.complete) / double(cs.with_client) : 0;
    std::printf("check-trace: %zu request chains, %lld with client span, "
                "%lld complete (%.1f%%), %lld orphans\n",
                cs.chains.size(), static_cast<long long>(cs.with_client),
                static_cast<long long>(cs.complete), 100.0 * frac,
                static_cast<long long>(cs.orphans));
    if (cs.with_client == 0) {
      std::fprintf(stderr, "check-trace: no client-originated chains found\n");
      return 1;
    }
    if (cs.orphans > 0) {
      std::fprintf(stderr,
                   "check-trace: %lld orphan chains (server-side spans with "
                   "no matching client trace_id)\n",
                   static_cast<long long>(cs.orphans));
      return 1;
    }
    const double min_frac = a.real("min-chain-frac", 0.99);
    if (frac < min_frac) {
      std::fprintf(stderr,
                   "check-trace: only %.1f%% of chains complete "
                   "(need >= %.1f%%)\n",
                   100.0 * frac, 100.0 * min_frac);
      return 1;
    }
    std::printf("check-trace: OK\n");
    return 0;
  }
  const auto& events = root.at("traceEvents").arr;
  std::map<long, long> spans_per_tid;
  std::map<std::string, long> spans_per_cat;
  long tasks = 0, bad = 0;
  for (const JsonValue& ev : events) {
    if (!ev.is_object() || !ev.has("ph") || !ev.at("ph").is_string()) {
      ++bad;
      continue;
    }
    if (ev.at("ph").str != "X") continue;
    if (!ev.has("ts") || !ev.at("ts").is_number() || !ev.has("dur") ||
        !ev.at("dur").is_number() || ev.at("dur").number < 0 ||
        !ev.has("name") || !ev.has("cat") || !ev.has("tid")) {
      ++bad;
      continue;
    }
    ++spans_per_tid[long(ev.at("tid").number)];
    ++spans_per_cat[ev.at("cat").str];
    if (ev.at("name").str == "task") ++tasks;
  }
  long total_spans = 0;
  for (const auto& [tid, cnt] : spans_per_tid) total_spans += cnt;
  std::printf("check-trace: %zu events, %ld spans on %zu lane%s, %ld task "
              "spans\n",
              events.size(), total_spans, spans_per_tid.size(),
              spans_per_tid.size() == 1 ? "" : "s", tasks);
  for (const auto& [cat, cnt] : spans_per_cat)
    std::printf("  cat %-10s %ld spans\n", cat.c_str(), cnt);
  if (bad > 0) {
    std::fprintf(stderr, "check-trace: %ld malformed events\n", bad);
    return 1;
  }
  const long min_workers = a.num("min-workers", 1);
  if (long(spans_per_tid.size()) < min_workers) {
    std::fprintf(stderr,
                 "check-trace: expected >= %ld worker lanes, found %zu\n",
                 min_workers, spans_per_tid.size());
    return 1;
  }
  if (a.has("expect-tasks") && tasks != a.num("expect-tasks", -1)) {
    std::fprintf(stderr, "check-trace: expected %ld task spans, found %ld\n",
                 a.num("expect-tasks", -1), tasks);
    return 1;
  }
  for (const char* cat : {"middle", "inner", "corner"}) {
    if (spans_per_cat.count(cat) == 0) {
      std::fprintf(stderr, "check-trace: no '%s' engine spans recorded\n",
                   cat);
      return 1;
    }
  }
  std::printf("check-trace: OK\n");
  return 0;
}

/// Parses one Chrome trace JSON file; UsageError when unreadable,
/// plain error (exit 1) semantics left to the caller via the bool.
bool load_trace_json(const std::string& path, JsonValue* out) {
  std::ifstream is(path);
  if (!is) {
    std::fprintf(stderr, "merge-traces: cannot open %s\n", path.c_str());
    return false;
  }
  std::string text((std::istreambuf_iterator<char>(is)),
                   std::istreambuf_iterator<char>());
  std::string err;
  if (!json_parse(text, *out, &err)) {
    std::fprintf(stderr, "merge-traces: %s: malformed JSON: %s\n",
                 path.c_str(), err.c_str());
    return false;
  }
  return true;
}

/// Merges a client-side and a server-side Chrome trace into one file,
/// each on its own pid track; spans correlate by trace_id (args.a0).
int cmd_merge_traces(const Args& a) {
  const std::string out_path = a.need("out");
  JsonValue client, server;
  if (!load_trace_json(a.need("client"), &client)) return 1;
  if (!load_trace_json(a.need("server"), &server)) return 1;
  std::ofstream os(out_path);
  if (!os) {
    std::fprintf(stderr, "merge-traces: cannot write %s\n", out_path.c_str());
    return 1;
  }
  obs::merge_chrome_traces(os, {&client, &server});
  long events = 0;
  for (const JsonValue* t : {&client, &server})
    if (t->is_object() && t->has("traceEvents") &&
        t->at("traceEvents").is_array())
      events += long(t->at("traceEvents").arr.size());
  std::printf("merge-traces: %ld events -> %s\n", events, out_path.c_str());
  return 0;
}

// SIGINT/SIGTERM land here; net-serve and top poll the flag and drain.
volatile std::sig_atomic_t g_stop_requested = 0;
extern "C" void handle_stop_signal(int) { g_stop_requested = 1; }

/// One row of the `npdp top` stage table: interpolated latency quantiles
/// from a wire histogram snapshot, printed in milliseconds.
void print_stage_row(const char* label, const obs::MetricsSnapshot& snap,
                     const std::string& name) {
  const obs::HistogramSnapshot* h = snap.find_histogram(name);
  if (h == nullptr || h->count == 0) {
    std::printf("  %-10s (no samples)\n", label);
    return;
  }
  std::printf("  %-10s p50 %9.3f ms  p99 %9.3f ms  max %9.3f ms  "
              "(%lld samples)\n",
              label, h->quantile(0.50) / 1e6, h->quantile(0.99) / 1e6,
              double(h->max) / 1e6, static_cast<long long>(h->count));
}

/// Live terminal view of a running net-serve: polls the binary
/// StatsRequest/StatsResponse frame and renders rps (from counter
/// deltas), per-stage latency quantiles, cache hit rate, shed/degrade
/// counts, queue depth and breaker state. --prom switches the output to
/// Prometheus text exposition (scrape-ready), --once exits after one
/// poll. Counter deltas are monotone because the server snapshots the
/// whole registry in one pass.
int cmd_top(const Args& a) {
  net::NpdpClient cli;
  std::string err;
  const std::string host = a.get("host", "127.0.0.1");
  const auto port = static_cast<std::uint16_t>(a.num("port", 9377));
  if (!cli.connect(host, port, &err)) {
    std::fprintf(stderr, "top: %s\n", err.c_str());
    return 1;
  }
  const bool once = a.has("once");
  const bool prom = a.has("prom");
  const long interval_ms = std::max(50L, a.num("interval-ms", 1000));
  const long iterations = once ? 1 : a.num("iterations", 0);
  const int timeout_ms = static_cast<int>(a.num("timeout-ms", 5000));

  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);

  bool have_prev = false;
  obs::MetricsSnapshot prev;
  auto prev_t = std::chrono::steady_clock::now();
  long iter = 0;
  while (g_stop_requested == 0) {
    net::WireStats ws;
    if (cli.stats_snapshot(&ws, timeout_ms, &err) !=
        net::NpdpClient::RecvStatus::Ok) {
      std::fprintf(stderr, "top: %s\n", err.c_str());
      return 1;
    }
    const auto now_t = std::chrono::steady_clock::now();
    const obs::MetricsSnapshot& snap = ws.metrics;

    if (prom) {
      std::vector<obs::PromLabeledSample> extra;
      extra.push_back({"queue_depth", {}, double(ws.queue_depth)});
      for (const auto& b : ws.breakers) {
        extra.push_back({"breaker_state", {{"backend", b.name}},
                         double(b.state)});
        extra.push_back({"breaker_failure_rate", {{"backend", b.name}},
                         b.failure_rate});
      }
      obs::write_prometheus_text(std::cout, snap, extra);
    } else {
      // Responded-request rate from serve.status.* counter deltas; the
      // first poll has no baseline, so it reports totals since start.
      std::int64_t responded = 0, responded_prev = 0;
      for (const auto& [name, v] : snap.counters)
        if (name.rfind("serve.status.", 0) == 0) responded += v;
      if (have_prev)
        for (const auto& [name, v] : prev.counters)
          if (name.rfind("serve.status.", 0) == 0) responded_prev += v;
      const double dt =
          have_prev
              ? std::chrono::duration<double>(now_t - prev_t).count()
              : 0;
      const double rps =
          dt > 0 ? double(responded - responded_prev) / dt : 0;

      const std::int64_t hits = snap.counter_or("serve.cache.hits", 0);
      const std::int64_t misses = snap.counter_or("serve.cache.misses", 0);
      const double hit_rate =
          hits + misses > 0 ? double(hits) / double(hits + misses) : 0;

      if (!once) std::printf("\033[2J\033[H");
      std::printf("npdp top — %s:%u  (poll %ld, interval %ld ms)\n",
                  host.c_str(), unsigned(port), iter + 1, interval_ms);
      if (have_prev)
        std::printf("  rps %.1f (responded %lld, +%lld)\n", rps,
                    static_cast<long long>(responded),
                    static_cast<long long>(responded - responded_prev));
      else
        std::printf("  responded %lld since start\n",
                    static_cast<long long>(responded));
      print_stage_row("queue", snap, "serve.queue_ns");
      print_stage_row("solve", snap, "serve.solve_ns");
      print_stage_row("encode", snap, "net.encode_ns");
      print_stage_row("total", snap, "serve.total_ns");
      std::printf("  cache hit rate %.1f%% (%lld hits / %lld misses)\n",
                  100.0 * hit_rate, static_cast<long long>(hits),
                  static_cast<long long>(misses));
      std::printf("  shed %lld  degraded %lld  retry-after %lld  "
                  "queue depth %lld\n",
                  static_cast<long long>(
                      snap.counter_or("serve.status.shed", 0)),
                  static_cast<long long>(
                      snap.counter_or("serve.status.degraded", 0)),
                  static_cast<long long>(
                      snap.counter_or("serve.status.retry-after", 0)),
                  static_cast<long long>(ws.queue_depth));
      // Per-tenant QoS rows, assembled from the labeled serve.tenant.*
      // metrics (registry names carry a "{tenant=NAME}" suffix). Only
      // printed when the server is actually running with tenancy.
      struct TenantRow {
        std::int64_t admitted = 0, throttled = 0, shed = 0;
        std::int64_t ok = 0, cached = 0;
        double depth = 0;
      };
      std::map<std::string, TenantRow> tenant_rows;
      const auto tenant_metric = [](const std::string& name,
                                    std::string* base, std::string* tenant) {
        constexpr const char* kPrefix = "serve.tenant.";
        if (name.rfind(kPrefix, 0) != 0 || name.back() != '}') return false;
        const std::size_t open = name.find("{tenant=");
        if (open == std::string::npos) return false;
        *base = name.substr(std::strlen(kPrefix),
                            open - std::strlen(kPrefix));
        *tenant = name.substr(open + 8, name.size() - open - 9);
        return true;
      };
      std::string base, tenant;
      for (const auto& [name, v] : snap.counters) {
        if (!tenant_metric(name, &base, &tenant)) continue;
        TenantRow& row = tenant_rows[tenant];
        if (base == "admitted") row.admitted = v;
        else if (base == "throttled") row.throttled = v;
        else if (base == "shed") row.shed = v;
        else if (base == "status.ok") row.ok = v;
        else if (base == "status.ok-cached") row.cached = v;
      }
      for (const auto& [name, v] : snap.gauges)
        if (tenant_metric(name, &base, &tenant) && base == "queue_depth")
          tenant_rows[tenant].depth = v;
      if (!tenant_rows.empty()) {
        std::printf("  tenants:\n");
        for (const auto& [tname, row] : tenant_rows) {
          const std::int64_t served = row.ok + row.cached;
          const double hit =
              served > 0 ? double(row.cached) / double(served) : 0;
          std::printf("    %-10s admitted %lld  throttled %lld  shed %lld"
                      "  depth %.0f  cache hit %.1f%%\n",
                      tname.c_str(), static_cast<long long>(row.admitted),
                      static_cast<long long>(row.throttled),
                      static_cast<long long>(row.shed), row.depth,
                      100.0 * hit);
        }
      }
      // Distributed-solve peer traffic, from the net.peer.* counters a
      // dist-solve peer's stats endpoint exports. The per-source
      // breakdown comes from the labeled net.peer.blocks_received{peer=K}
      // counters; totals print even when no labeled rows exist yet.
      const std::int64_t pblk_sent =
          snap.counter_or("net.peer.blocks_sent", 0);
      const std::int64_t pblk_recv =
          snap.counter_or("net.peer.blocks_received", 0);
      if (pblk_sent + pblk_recv > 0) {
        std::printf("  peers: blocks sent %lld  received %lld  "
                    "sent %.2f MiB  received %.2f MiB  stalled %.3f s\n",
                    static_cast<long long>(pblk_sent),
                    static_cast<long long>(pblk_recv),
                    double(snap.counter_or("net.peer.bytes_sent", 0)) /
                        (1 << 20),
                    double(snap.counter_or("net.peer.bytes_received", 0)) /
                        (1 << 20),
                    double(snap.counter_or("net.peer.stall_ns", 0)) / 1e9);
        constexpr const char* kPeerPrefix = "net.peer.blocks_received{peer=";
        for (const auto& [name, v] : snap.counters) {
          if (name.rfind(kPeerPrefix, 0) != 0 || name.back() != '}')
            continue;
          const std::string src = name.substr(
              std::strlen(kPeerPrefix),
              name.size() - std::strlen(kPeerPrefix) - 1);
          std::printf("    from rank %-4s %lld blocks\n", src.c_str(),
                      static_cast<long long>(v));
        }
      }
      if (!ws.breakers.empty()) {
        std::printf("  breakers:");
        for (const auto& b : ws.breakers)
          std::printf(" %s=%s(%.0f%%)", b.name.c_str(),
                      resilience::breaker_state_name(
                          static_cast<resilience::BreakerState>(b.state)),
                      100.0 * b.failure_rate);
        std::printf("\n");
      }
      std::fflush(stdout);
    }

    prev = snap;
    prev_t = now_t;
    have_prev = true;
    ++iter;
    if (iterations > 0 && iter >= iterations) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
  return 0;
}

int cmd_info(const Args& a) {
  const std::string path = a.need("file");
  const auto table = load_blocked_file<float>(path);
  std::printf("%s: blocked table, n=%lld, block side %lld (%s), %s total\n",
              path.c_str(), static_cast<long long>(table.size()),
              static_cast<long long>(table.block_side()),
              fmt_bytes(double(table.block_bytes())).c_str(),
              fmt_bytes(double(table.total_cells()) * 4).c_str());
  std::printf("d[0][n-1] = %g\n", double(table.at(0, table.size() - 1)));
  return 0;
}

int cmd_fold(const Args& a) {
  std::vector<zuker::Base> seq;
  if (a.has("seq")) {
    seq = zuker::parse_sequence(a.get("seq"));
  } else {
    seq = zuker::random_sequence(a.num("random", 300),
                                 static_cast<std::uint64_t>(a.num("seed", 7)));
  }
  zuker::FoldOptions fo;
  fo.threads = static_cast<std::size_t>(a.num("threads", 1));
  zuker::ZukerFolder folder({}, fo);
  Stopwatch sw;
  const auto r = folder.fold(seq);
  std::printf("%s\n%s\n", zuker::bases_to_string(seq).c_str(),
              r.structure.c_str());
  std::printf("MFE %.2f, %zu pairs, %s\n", double(r.mfe), r.pairs.size(),
              fmt_seconds(sw.seconds()).c_str());
  return 0;
}

int cmd_parse(const Args& a) {
  cyk::Grammar g = cyk::balanced_parens_grammar();
  std::string alphabet = "()";
  std::string text = a.get("parens", "(()())");
  if (a.has("anbn")) {
    g = cyk::anbn_grammar();
    alphabet = "ab";
    text = a.get("anbn");
  }
  cyk::CykParser parser(g);
  const auto r = parser.parse(cyk::tokens_from_string(text, alphabet));
  std::printf("%s: %s", text.c_str(),
              r.accepted() ? "accepted" : "rejected");
  if (r.accepted()) std::printf(" (cost %.1f)", double(r.cost));
  std::printf("\n");
  return r.accepted() ? 0 : 1;
}

int cmd_simulate(const Args& a) {
  CellConfig cfg = qs20();
  cfg.num_spes = static_cast<int>(a.num("spes", 16));
  CellSimOptions o;
  o.block_side = a.num("block", a.has("dp") ? 64 : 88);
  o.record_trace = a.has("trace");
  auto report = [&](auto tag) {
    using T = decltype(tag);
    NpdpInstance<T> inst;
    inst.n = a.num("n", 4096);
    inst.init = [](index_t, index_t) { return T(1); };
    const auto r = simulate_cellnpdp(inst, cfg, o);
    std::printf("simulated %s n=%lld on %d SPEs (block %lld): %s\n",
                sizeof(T) == 4 ? "SP" : "DP",
                static_cast<long long>(inst.n), cfg.num_spes,
                static_cast<long long>(o.block_side),
                fmt_seconds(r.seconds).c_str());
    std::printf("DMA in %s, utilization %s, kernel %d cycles\n",
                fmt_bytes(double(r.dma_bytes_in)).c_str(),
                fmt_pct(r.utilization).c_str(), r.kernel_cycles);
    if (a.has("trace")) {
      std::ofstream os(a.get("trace"));
      r.write_trace_csv(os);
      std::printf("trace written to %s (%zu events)\n",
                  a.get("trace").c_str(), r.trace.size());
    }
  };
  if (a.has("dp")) {
    report(double{});
  } else {
    report(float{});
  }
  return 0;
}

int cmd_cluster(const Args& a) {
  NpdpInstance<float> inst;
  inst.n = a.num("n", 4096);
  inst.init = [](index_t, index_t) { return 1.0f; };
  ClusterConfig cfg;
  cfg.nodes = static_cast<int>(a.num("nodes", 8));
  cfg.link_bandwidth = a.real("bw-gbps", 3.0) * 1e9;
  cfg.link_latency = a.real("lat-us", 10.0) * 1e-6;
  ClusterSimOptions o;
  o.block_side = a.num("block", 64);
  const auto r = simulate_cluster_npdp(inst, cfg, o);
  std::printf("cluster n=%lld on %d nodes: %s, comm %s, efficiency %s\n",
              static_cast<long long>(inst.n), cfg.nodes,
              fmt_seconds(r.seconds).c_str(),
              fmt_bytes(double(r.comm_bytes)).c_str(),
              fmt_pct(r.efficiency).c_str());
  return 0;
}

int cmd_model(const Args& a) {
  ModelParams p;
  p.n1 = double(a.num("n", 4096));
  p.cores = double(a.num("spes", 16));
  const auto sp = spu_latencies(Precision::Single);
  p.kernel_cycles = kernel_steady_cycles(4, sp);
  p.n2_override = double(a.num("block", 88));
  std::printf("T_M=%s T_C=%s T_all=%s U=%s %s-bound (B_req %s/s)\n",
              fmt_seconds(model_memory_time(p)).c_str(),
              fmt_seconds(model_compute_time(p)).c_str(),
              fmt_seconds(model_total_time(p)).c_str(),
              fmt_pct(model_utilization(p)).c_str(),
              model_compute_bound(p) ? "compute" : "memory",
              fmt_bytes(model_required_bandwidth(p)).c_str());
  return 0;
}

serve::OverloadPolicy policy_from(const std::string& s) {
  if (s == "block") return serve::OverloadPolicy::Block;
  if (s == "reject") return serve::OverloadPolicy::Reject;
  if (s == "shed" || s == "shed-oldest")
    return serve::OverloadPolicy::ShedOldest;
  throw UsageError("unknown --policy '" + s + "' (block|reject|shed)");
}

serve::ServiceOptions service_options_from(const Args& a) {
  serve::ServiceOptions so;
  so.workers = static_cast<std::size_t>(a.num("workers", 4));
  so.queue_capacity = static_cast<std::size_t>(a.num("queue", 256));
  so.policy = policy_from(a.get("policy", "block"));
  so.cache_capacity = static_cast<std::size_t>(a.num("cache", 1024));
  so.batch_max = static_cast<std::size_t>(a.num("batch", 8));
  so.batch_max_size = a.num("batch-max-size", 512);
  if (a.has("backend")) {
    backend_from(a.get("backend"));  // unknown name -> usage error (exit 3)
    so.backend = a.get("backend");
  }
  // Resilience ladder knobs (all default-off; see docs/resilience.md).
  if (a.has("retries"))
    so.resilience.retry.max_attempts =
        std::max(1, static_cast<int>(a.num("retries", 1)));
  if (a.has("breaker")) so.resilience.breaker_enabled = true;
  if (a.has("fallback")) {
    backend_from(a.get("fallback"));  // validate the name up front
    so.resilience.fallback_backend = a.get("fallback");
  }
  if (a.has("hedge")) so.resilience.hedge.enabled = true;
  // Multi-tenant QoS policies: --tenants "1:name=hot:rate=500:burst=50:
  // weight=1:cache-kb=64/2:name=quiet:weight=4" (entries separated by
  // '/', fields by ':', first field the numeric tenant id).
  if (a.has("tenants")) {
    std::string err;
    if (!serve::parse_tenant_spec(a.get("tenants"), &so.tenants, &err))
      throw UsageError("--tenants: " + err);
  }
  return so;
}

/// Drives the in-process solve service from a line-delimited request
/// stream (one request per line, '#' comments and blank lines skipped;
/// format in src/serve/request.hpp). "-" reads stdin.
int cmd_serve(const Args& a) {
  const std::string path = a.need("requests");
  std::ifstream file;
  if (path != "-") {
    file.open(path);
    if (!file) throw UsageError("cannot open request stream " + path);
  }
  std::istream& is = path == "-" ? std::cin : file;

  auto fault_scope = fault_scope_from(a);  // outlives the service
  serve::SolveService service(service_options_from(a));
  std::vector<std::future<serve::Response>> futures;
  std::string line;
  std::uint64_t lineno = 0, auto_id = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    serve::Request req;
    std::string err;
    if (!serve::parse_request_line(line, &req, &err))
      throw UsageError(path + ":" + std::to_string(lineno) + ": " + err);
    if (req.id == 0) req.id = ++auto_id;
    futures.push_back(service.submit(std::move(req)));
  }
  bool any_error = false;
  for (auto& f : futures) {
    const serve::Response r = f.get();
    any_error = any_error || r.status == serve::Status::Error;
    // backend= is the *effective* engine: when the resilience ladder fell
    // back (Degraded), this names the backend that actually answered, not
    // the one the request asked for.
    std::string backend_col;
    if (!r.backend.empty()) backend_col = " backend=" + r.backend;
    std::printf("id=%llu status=%s value=%g queue=%.3fms solve=%.3fms "
                "total=%.3fms%s%s%s\n",
                static_cast<unsigned long long>(r.id),
                serve::status_name(r.status), r.value,
                double(r.queue_ns) / 1e6, double(r.solve_ns) / 1e6,
                double(r.total_ns) / 1e6, backend_col.c_str(),
                r.detail.empty() ? "" : " ", r.detail.c_str());
  }
  service.stop();
  const serve::ServiceStats st = service.stats();
  std::printf("served %llu requests: %llu ok, %llu cached, %llu degraded, "
              "%llu rejected, %llu shed, %llu expired, %llu cancelled, "
              "%llu retry-after, %llu errors; %llu batches, %llu arena "
              "reuses\n",
              static_cast<unsigned long long>(st.submitted),
              static_cast<unsigned long long>(st.completed),
              static_cast<unsigned long long>(st.cache_hits),
              static_cast<unsigned long long>(st.degraded),
              static_cast<unsigned long long>(st.rejected),
              static_cast<unsigned long long>(st.shed),
              static_cast<unsigned long long>(st.expired),
              static_cast<unsigned long long>(st.cancelled),
              static_cast<unsigned long long>(st.retry_after),
              static_cast<unsigned long long>(st.errors),
              static_cast<unsigned long long>(st.batches),
              static_cast<unsigned long long>(st.arena_reuses));
  if (st.retries + st.hedges + st.fallbacks > 0)
    std::printf("resilience: %llu retries, %llu hedges (%llu wins), "
                "%llu fallbacks\n",
                static_cast<unsigned long long>(st.retries),
                static_cast<unsigned long long>(st.hedges),
                static_cast<unsigned long long>(st.hedge_wins),
                static_cast<unsigned long long>(st.fallbacks));
  return any_error ? 1 : 0;
}

/// Closed- and open-loop load generator against the in-process service.
/// Draws requests from a small pool of distinct instances so the result
/// cache sees a realistic repeated-instance workload, and writes
/// BENCH_serve.json with throughput and latency percentiles.
int cmd_bench_serve(const Args& a) {
  const long total = a.num("requests", 1000);
  if (total < 1) throw UsageError("--requests must be >= 1");
  const long distinct = std::max(1L, a.num("distinct", 25));
  const std::string mode = a.get("mode", "closed");
  if (mode != "closed" && mode != "open")
    throw UsageError("unknown --mode '" + mode + "' (closed|open)");
  serve::ServiceOptions so = service_options_from(a);
  const long concurrency =
      std::max(1L, a.num("concurrency", 2 * long(so.workers)));
  const double rate = a.real("rate", 500.0);
  const long max_n = std::max(64L, a.num("n", 192));
  auto fault_scope = fault_scope_from(a);  // outlives the service

  // The distinct-instance pool: sizes cycle through a few block multiples,
  // seeds make every pool entry a different computation.
  std::vector<serve::Request> pool;
  pool.reserve(static_cast<std::size_t>(distinct));
  for (long i = 0; i < distinct; ++i) {
    serve::Request r;
    serve::SolveSpec s;
    s.n = 64 + 32 * (i % std::max(1L, (max_n - 64) / 32 + 1));
    s.seed = static_cast<std::uint64_t>(1000 + i);
    r.payload = s;
    pool.push_back(r);
  }
  SplitMix64 pick(static_cast<std::uint64_t>(a.num("seed", 42)));

  serve::SolveService service(so);
  std::vector<std::future<serve::Response>> inflight;
  std::vector<serve::Response> responses;
  responses.reserve(static_cast<std::size_t>(total));
  auto submit_one = [&](long i) {
    serve::Request r = pool[pick.next_below(pool.size())];
    r.id = static_cast<std::uint64_t>(i + 1);
    inflight.push_back(service.submit(std::move(r)));
  };

  Stopwatch sw;
  if (mode == "closed") {
    // Fixed number of outstanding requests; a completion triggers the
    // next submission (FIFO harvest keeps the window exact).
    long submitted = 0;
    std::size_t harvest = 0;
    while (submitted < total) {
      if (long(inflight.size() - harvest) < concurrency) {
        submit_one(submitted++);
        continue;
      }
      responses.push_back(inflight[harvest++].get());
    }
    for (; harvest < inflight.size(); ++harvest)
      responses.push_back(inflight[harvest].get());
  } else {
    // Open loop: Poisson-free fixed-rate arrivals, latency measured under
    // whatever backlog the rate builds up.
    const auto t0 = std::chrono::steady_clock::now();
    const double gap_s = rate > 0 ? 1.0 / rate : 0;
    for (long i = 0; i < total; ++i) {
      std::this_thread::sleep_until(
          t0 + std::chrono::duration<double>(i * gap_s));
      submit_one(i);
    }
    for (auto& f : inflight) responses.push_back(f.get());
  }
  const double wall_s = sw.seconds();
  service.stop();

  // Latency percentiles via the same log2-bucket histogram the serving
  // metrics use (interpolated; p99_upper keeps the old bucket-ceiling
  // number for comparability across benchmark archives).
  obs::Histogram lat_h;
  long ok = 0, cached = 0, dropped = 0;
  std::map<std::string, long> backend_counts;
  for (const auto& r : responses) {
    if (serve::is_success(r.status)) {
      lat_h.observe(r.total_ns);
      ok += r.status == serve::Status::Ok;
      cached += r.status == serve::Status::OkCached;
      // Count the *effective* backend per success, so a run where
      // --fallback rewrote the engine shows up as "reference:123" rather
      // than pretending the configured backend served everything.
      ++backend_counts[r.backend.empty() ? "?" : r.backend];
    } else {
      ++dropped;
    }
  }
  std::string effective_backends;
  for (const auto& [name, count] : backend_counts) {
    if (!effective_backends.empty()) effective_backends += ",";
    effective_backends += name + ":" + std::to_string(count);
  }
  const double p50 = lat_h.quantile(0.50) / 1e6;
  const double p99 = lat_h.quantile(0.99) / 1e6;
  const double p99_upper = double(lat_h.quantile_upper_bound(0.99)) / 1e6;
  const double rps = double(responses.size()) / wall_s;
  const serve::ServiceStats st = service.stats();
  const double hit_rate =
      st.cache_hits + st.cache_misses > 0
          ? double(st.cache_hits) / double(st.cache_hits + st.cache_misses)
          : 0;

  std::printf("bench-serve: %ld requests (%s loop, %zu workers, policy %s): "
              "%s wall, %.0f req/s\n",
              total, mode.c_str(), so.workers,
              serve::overload_policy_name(so.policy),
              fmt_seconds(wall_s).c_str(), rps);
  std::printf("  latency p50 %.3f ms, p99 %.3f ms; %ld ok, %ld cached "
              "(hit rate %.1f%%), %ld dropped\n",
              p50, p99, ok, cached, 100.0 * hit_rate, dropped);
  if (!effective_backends.empty())
    std::printf("  effective backends: %s\n", effective_backends.c_str());
  std::printf("  %llu batches, %llu arena reuses / %llu allocations, "
              "%llu evictions\n",
              static_cast<unsigned long long>(st.batches),
              static_cast<unsigned long long>(st.arena_reuses),
              static_cast<unsigned long long>(st.arena_allocations),
              static_cast<unsigned long long>(st.cache_evictions));

  BenchConfig cfg;
  cfg.json_dir = a.get("json-dir", ".");
  BenchJson json("serve", cfg);
  json.record()
      .set("mode", mode)
      .set("requests", total)
      .set("workers", so.workers)
      .set("queue_capacity", so.queue_capacity)
      .set("policy", serve::overload_policy_name(so.policy))
      .set("concurrency", concurrency)
      .set("rate", rate)
      .set("distinct", distinct)
      .set("wall_s", wall_s)
      .set("rps", rps)
      .set("p50_ms", p50)
      .set("p99_ms", p99)
      .set("p99_upper_ms", p99_upper)
      .set("ok", ok)
      .set("ok_cached", cached)
      .set("dropped", dropped)
      .set("backend", so.backend)
      .set("effective_backends", effective_backends)
      .set("rejected", std::int64_t(st.rejected))
      .set("shed", std::int64_t(st.shed))
      .set("expired", std::int64_t(st.expired))
      .set("cancelled", std::int64_t(st.cancelled))
      .set("errors", std::int64_t(st.errors))
      .set("cache_hit_rate", hit_rate)
      .set("cache_evictions", std::int64_t(st.cache_evictions))
      .set("batches", std::int64_t(st.batches))
      .set("arena_reuses", std::int64_t(st.arena_reuses))
      .set("arena_allocations", std::int64_t(st.arena_allocations))
      .set("degraded", std::int64_t(st.degraded))
      .set("retry_after", std::int64_t(st.retry_after))
      .set("retries", std::int64_t(st.retries))
      .set("hedges", std::int64_t(st.hedges))
      .set("hedge_wins", std::int64_t(st.hedge_wins))
      .set("fallbacks", std::int64_t(st.fallbacks));
  json.flush();
  return 0;
}

/// Runs NpdpServer in the foreground until SIGINT/SIGTERM (or the
/// optional --duration-ms elapses), then drains gracefully: stop
/// accepting, answer everything admitted, flush every socket.
int cmd_net_serve(const Args& a) {
  net::ServerOptions no;
  no.host = a.get("host", "127.0.0.1");
  no.port = static_cast<std::uint16_t>(a.num("port", 9377));
  no.reactors = static_cast<int>(a.num("reactors", 2));
  no.max_frame = static_cast<std::size_t>(
      a.num("max-frame", long(net::kDefaultMaxFrame)));
  no.idle_timeout_ms = a.num("idle-timeout-ms", 30000);
  no.drain_timeout_ms = a.num("drain-timeout-ms", 5000);
  auto fault_scope = fault_scope_from(a);  // outlives the server
  const bool tracing = a.has("trace");
  if (tracing)
    // Started before the server so the reactor threads register their
    // ring buffers; exported after drain as one server-side trace.
    obs::Tracer::instance().start(
        static_cast<std::size_t>(a.num("trace-buf", 1 << 18)));
  if (a.has("request-log")) {
    obs::request_log().enable(
        static_cast<std::size_t>(a.num("log-capacity", 1 << 16)));
    obs::request_log().set_sample_every(
        static_cast<std::uint32_t>(std::max(1L, a.num("log-sample", 1))));
  }
  net::NpdpServer server(no, service_options_from(a));
  std::string err;
  if (!server.start(&err)) {
    std::fprintf(stderr, "net-serve: %s\n", err.c_str());
    return 1;
  }
  if (a.has("port-file")) {
    // Written only after the bind succeeded, so a script that polls this
    // file can connect the moment it appears (needed with --port 0).
    std::ofstream os(a.get("port-file"));
    if (!os) {
      std::fprintf(stderr, "net-serve: cannot write %s\n",
                   a.get("port-file").c_str());
      return 1;
    }
    os << server.port() << "\n";
  }
  std::printf("net-serve: listening on %s:%u (%d reactors, max frame %zu, "
              "idle timeout %lld ms)\n",
              no.host.c_str(), unsigned(server.port()), no.reactors,
              no.max_frame, static_cast<long long>(no.idle_timeout_ms));
  std::fflush(stdout);
  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);
  const long duration_ms = a.num("duration-ms", 0);
  const auto t0 = std::chrono::steady_clock::now();
  while (g_stop_requested == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    if (duration_ms > 0 &&
        std::chrono::steady_clock::now() - t0 >=
            std::chrono::milliseconds(duration_ms))
      break;
  }
  std::printf("net-serve: draining...\n");
  std::fflush(stdout);
  server.stop();
  const net::ServerStats ns = server.stats();
  const serve::ServiceStats ss = server.service().stats();
  std::printf("net-serve: drained. %llu conns accepted, %llu frames in, "
              "%llu responses, %llu bad frames, %llu protocol errors, "
              "%llu dropped responses\n",
              static_cast<unsigned long long>(ns.accepted),
              static_cast<unsigned long long>(ns.frames_in),
              static_cast<unsigned long long>(ns.responses),
              static_cast<unsigned long long>(ns.frames_bad),
              static_cast<unsigned long long>(ns.protocol_errors),
              static_cast<unsigned long long>(ns.dropped_responses));
  std::printf("net-serve: service %llu submitted, %llu ok, %llu cached, "
              "%llu degraded, %llu rejected, %llu expired\n",
              static_cast<unsigned long long>(ss.submitted),
              static_cast<unsigned long long>(ss.completed),
              static_cast<unsigned long long>(ss.cache_hits),
              static_cast<unsigned long long>(ss.degraded),
              static_cast<unsigned long long>(ss.rejected),
              static_cast<unsigned long long>(ss.expired));
  if (tracing) {
    obs::Tracer::instance().stop();
    const long events =
        obs::export_chrome_trace(a.get("trace"), "npdp-server");
    if (events < 0) {
      std::fprintf(stderr, "net-serve: cannot write %s\n",
                   a.get("trace").c_str());
      return 1;
    }
    std::printf("net-serve: trace written to %s (%ld events)\n",
                a.get("trace").c_str(), events);
  }
  if (a.has("request-log")) {
    std::ofstream os(a.get("request-log"));
    if (!os) {
      std::fprintf(stderr, "net-serve: cannot write %s\n",
                   a.get("request-log").c_str());
      return 1;
    }
    const std::size_t written = obs::request_log().snapshot().size();
    obs::request_log().write_jsonl(os);
    std::printf("net-serve: %zu wide events written to %s "
                "(%llu appended, %llu sampled out)\n",
                written, a.get("request-log").c_str(),
                static_cast<unsigned long long>(
                    obs::request_log().appended()),
                static_cast<unsigned long long>(
                    obs::request_log().sampled_out()));
  }
  return 0;
}

/// Splits one comma-separated "[name=]host:port,..." flag value (the Args
/// map rejects repeated flags, so lists ride in a single value). The
/// optional name= prefix is the replica's ring identity; it defaults to
/// "host:port".
std::vector<router::ReplicaEndpoint> parse_endpoint_list(
    const std::string& spec, const char* flag) {
  std::vector<router::ReplicaEndpoint> out;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    std::string item = spec.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    pos = comma == std::string::npos ? spec.size() + 1 : comma + 1;
    if (item.empty()) continue;
    router::ReplicaEndpoint ep;
    const std::size_t eq = item.find('=');
    if (eq != std::string::npos) {
      ep.name = item.substr(0, eq);
      item = item.substr(eq + 1);
    }
    const std::size_t colon = item.rfind(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 >= item.size())
      throw UsageError(std::string("--") + flag + ": '" + item +
                       "' is not host:port");
    ep.host = item.substr(0, colon);
    const long port = std::atol(item.c_str() + colon + 1);
    if (port <= 0 || port > 65535)
      throw UsageError(std::string("--") + flag + ": bad port in '" + item +
                       "'");
    ep.port = static_cast<std::uint16_t>(port);
    if (ep.name.empty()) ep.name = item;
    out.push_back(std::move(ep));
  }
  if (out.empty())
    throw UsageError(std::string("--") + flag + ": empty endpoint list");
  return out;
}

/// Network load generator against a running net-serve (or net-route).
/// Closed loop by default; --rate R switches to open-loop fixed-rate
/// injection. --targets fans the connections out over several endpoints
/// round-robin. Writes BENCH_net.json (one aggregate record, plus one
/// per-target record when several targets are named) and exits nonzero if
/// any protocol or transport error occurred (the loopback smoke check in
/// verify.sh relies on that).
int cmd_net_bench(const Args& a) {
  net::LoadGenOptions lo;
  lo.host = a.get("host", "127.0.0.1");
  lo.port = static_cast<std::uint16_t>(a.num("port", 9377));
  if (a.has("targets")) {
    for (const auto& ep : parse_endpoint_list(a.get("targets"), "targets"))
      lo.targets.push_back({ep.host, ep.port});
  }
  lo.connections = static_cast<int>(a.num("connections", 4));
  lo.rate = a.real("rate", 0);
  lo.duration_ms = static_cast<std::int64_t>(a.real("duration", 2.0) * 1000);
  lo.max_requests = static_cast<std::uint64_t>(a.num("requests", 0));
  lo.mix = a.get("mix", "chain");
  lo.size = a.num("size", 32);
  lo.priority = static_cast<int>(a.num("priority", 0));
  lo.deadline_ms = static_cast<std::uint32_t>(a.num("deadline-ms", 0));
  const long tenant = a.num("tenant", 0);
  if (tenant < 0 || tenant >= long(serve::kMaxTenants))
    throw UsageError("--tenant out of range (0.." +
                     std::to_string(serve::kMaxTenants - 1) + ")");
  lo.tenant = static_cast<std::uint16_t>(tenant);
  lo.backend = a.get("backend", "");
  lo.semiring = a.get("semiring", "");
  if (!lo.semiring.empty() && lo.semiring != "mix") {
    SemiringId sr;
    if (!semiring_from_name(lo.semiring, &sr))
      throw UsageError("unknown --semiring '" + lo.semiring +
                       "' (min-plus|max-plus|counting|viterbi-log|mix)");
  }
  lo.seed = static_cast<std::uint64_t>(a.num("seed", 1));
  lo.distinct = static_cast<int>(a.num("distinct", 16));
  lo.timeout_ms = static_cast<int>(a.num("timeout-ms", 10000));
  lo.connect_timeout_ms = static_cast<int>(a.num("connect-timeout-ms", 0));
  lo.trace = a.has("trace") || a.has("trace-sample");
  lo.trace_sample = a.real("trace-sample", 1.0);
  if (lo.mix != "solve" && lo.mix != "fold" && lo.mix != "parse" &&
      lo.mix != "chain" && lo.mix != "bst" && lo.mix != "mix")
    throw UsageError("unknown --mix '" + lo.mix +
                     "' (solve|fold|parse|chain|bst|mix)");
  const bool tracing = a.has("trace");
  if (tracing)
    obs::Tracer::instance().start(
        static_cast<std::size_t>(a.num("trace-buf", 1 << 18)));

  net::LoadGenResult r;
  std::string err;
  if (!net::run_loadgen(lo, &r, &err)) {
    std::fprintf(stderr, "net-bench: %s\n", err.c_str());
    return 1;
  }
  if (tracing) obs::Tracer::instance().stop();
  // Percentiles go through the same log2-bucket histogram the server's
  // metrics use, so BENCH_net.json and the live stats plane agree to
  // within one bucket. p99 is interpolated; p99_upper is the bucket
  // ceiling (the pre-interpolation behaviour, kept for comparability).
  obs::Histogram lat_h;
  for (const double ms : r.latencies_ms)
    lat_h.observe(static_cast<std::int64_t>(ms * 1e6));
  const double p50 = lat_h.quantile(0.50) / 1e6;
  const double p90 = lat_h.quantile(0.90) / 1e6;
  const double p99 = lat_h.quantile(0.99) / 1e6;
  const double p99_upper = double(lat_h.quantile_upper_bound(0.99)) / 1e6;
  const double pmax = lat_h.count() > 0 ? double(lat_h.max()) / 1e6 : 0;
  // Coordinated-omission-corrected view: latency from the scheduled send
  // instant. Identical to the above in closed loop; under open-loop
  // overload it is the honest number.
  obs::Histogram corr_h;
  for (const double ms : r.corrected_latencies_ms)
    corr_h.observe(static_cast<std::int64_t>(ms * 1e6));
  const double cp50 = corr_h.quantile(0.50) / 1e6;
  const double cp99 = corr_h.quantile(0.99) / 1e6;
  const char* mode = lo.rate > 0 ? "open" : "closed";
  std::printf("net-bench: %llu sent, %llu replies over %d conns (%s loop) "
              "in %.2f s: %.0f req/s\n",
              static_cast<unsigned long long>(r.sent),
              static_cast<unsigned long long>(r.replies), lo.connections,
              mode, r.elapsed_s, r.achieved_rps);
  std::printf("  latency p50 %.3f ms, p90 %.3f ms, p99 %.3f ms (upper "
              "%.3f ms), max %.3f ms\n",
              p50, p90, p99, p99_upper, pmax);
  if (lo.rate > 0)
    std::printf("  corrected (from scheduled send) p50 %.3f ms, p99 %.3f "
                "ms; %llu intervals slipped\n",
                cp50, cp99, static_cast<unsigned long long>(r.slipped));
  std::printf("  %llu ok, %llu cached, %llu degraded, %llu rejected, %llu "
              "shed, %llu expired, %llu cancelled, %llu retry-after, %llu "
              "errors\n",
              static_cast<unsigned long long>(r.ok),
              static_cast<unsigned long long>(r.cached),
              static_cast<unsigned long long>(r.degraded),
              static_cast<unsigned long long>(r.rejected),
              static_cast<unsigned long long>(r.shed),
              static_cast<unsigned long long>(r.expired),
              static_cast<unsigned long long>(r.cancelled),
              static_cast<unsigned long long>(r.retry_after),
              static_cast<unsigned long long>(r.errors));
  if (r.proto_errors + r.transport_errors > 0)
    std::printf("  !! %llu protocol errors, %llu transport errors\n",
                static_cast<unsigned long long>(r.proto_errors),
                static_cast<unsigned long long>(r.transport_errors));
  if (r.per_target.size() > 1)
    for (const auto& t : r.per_target)
      std::printf("  [%s] %llu sent, %llu replies: %llu ok, %llu cached, "
                  "%llu errors\n",
                  t.target.c_str(),
                  static_cast<unsigned long long>(t.sent),
                  static_cast<unsigned long long>(t.replies),
                  static_cast<unsigned long long>(t.ok),
                  static_cast<unsigned long long>(t.cached),
                  static_cast<unsigned long long>(t.errors));

  BenchConfig cfg;
  cfg.json_dir = a.get("json-dir", ".");
  BenchJson json("net", cfg);
  json.record()
      .set("mode", mode)
      .set("connections", lo.connections)
      .set("rate", lo.rate)
      .set("duration_s", double(lo.duration_ms) / 1000)
      .set("mix", lo.mix)
      .set("semiring", lo.semiring.empty() ? "min-plus" : lo.semiring)
      .set("size", std::int64_t(lo.size))
      .set("deadline_ms", std::int64_t(lo.deadline_ms))
      .set("tenant", std::int64_t(lo.tenant))
      .set("sent", std::int64_t(r.sent))
      .set("replies", std::int64_t(r.replies))
      .set("elapsed_s", r.elapsed_s)
      .set("rps", r.achieved_rps)
      .set("p50_ms", p50)
      .set("p90_ms", p90)
      .set("p99_ms", p99)
      .set("p99_upper_ms", p99_upper)
      .set("max_ms", pmax)
      .set("corrected_p50_ms", cp50)
      .set("corrected_p99_ms", cp99)
      .set("slipped", std::int64_t(r.slipped))
      .set("ok", std::int64_t(r.ok))
      .set("ok_cached", std::int64_t(r.cached))
      .set("degraded", std::int64_t(r.degraded))
      .set("rejected", std::int64_t(r.rejected))
      .set("shed", std::int64_t(r.shed))
      .set("expired", std::int64_t(r.expired))
      .set("cancelled", std::int64_t(r.cancelled))
      .set("retry_after", std::int64_t(r.retry_after))
      .set("errors", std::int64_t(r.errors))
      .set("proto_errors", std::int64_t(r.proto_errors))
      .set("transport_errors", std::int64_t(r.transport_errors));
  // One record per endpoint when the run fans out over --targets, so the
  // router bench can compare per-replica status mixes from one file.
  if (r.per_target.size() > 1)
    for (const auto& t : r.per_target)
      json.record()
          .set("mode", "per_target")
          .set("target", t.target)
          .set("sent", std::int64_t(t.sent))
          .set("replies", std::int64_t(t.replies))
          .set("ok", std::int64_t(t.ok))
          .set("ok_cached", std::int64_t(t.cached))
          .set("degraded", std::int64_t(t.degraded))
          .set("rejected", std::int64_t(t.rejected))
          .set("shed", std::int64_t(t.shed))
          .set("expired", std::int64_t(t.expired))
          .set("cancelled", std::int64_t(t.cancelled))
          .set("retry_after", std::int64_t(t.retry_after))
          .set("errors", std::int64_t(t.errors))
          .set("proto_errors", std::int64_t(t.proto_errors))
          .set("transport_errors", std::int64_t(t.transport_errors));
  json.flush();
  if (tracing) {
    const long events =
        obs::export_chrome_trace(a.get("trace"), "npdp-client");
    if (events < 0) {
      std::fprintf(stderr, "net-bench: cannot write %s\n",
                   a.get("trace").c_str());
      return 1;
    }
    std::printf("  client trace written to %s (%ld events)\n",
                a.get("trace").c_str(), events);
  }
  return r.clean() ? 0 : 1;
}

/// Runs NpdpRouter in the foreground until SIGINT/SIGTERM (or the
/// optional --duration-ms elapses), then drains gracefully. Mirrors
/// cmd_net_serve: --port-file appears only after the bind succeeded.
int cmd_net_route(const Args& a) {
  router::RouterOptions ro;
  ro.net.host = a.get("host", "127.0.0.1");
  ro.net.port = static_cast<std::uint16_t>(a.num("port", 9378));
  ro.net.reactors = static_cast<int>(a.num("reactors", 2));
  ro.net.max_frame = static_cast<std::size_t>(
      a.num("max-frame", long(net::kDefaultMaxFrame)));
  ro.net.idle_timeout_ms = a.num("idle-timeout-ms", 30000);
  ro.net.drain_timeout_ms = a.num("drain-timeout-ms", 5000);
  ro.replicas = parse_endpoint_list(a.need("replicas"), "replicas");
  ro.vnodes = static_cast<int>(a.num("vnodes", 64));
  ro.max_attempts = static_cast<int>(a.num("max-attempts", 3));
  ro.probe_interval_ms = a.num("probe-interval-ms", 200);
  ro.probe_timeout_ms = static_cast<int>(a.num("probe-timeout-ms", 1000));
  ro.connect_timeout_ms = static_cast<int>(a.num("connect-timeout-ms", 1000));
  const bool tracing = a.has("trace");
  if (tracing)
    obs::Tracer::instance().start(
        static_cast<std::size_t>(a.num("trace-buf", 1 << 18)));
  router::NpdpRouter router(ro);
  std::string err;
  if (!router.start(&err)) {
    std::fprintf(stderr, "net-route: %s\n", err.c_str());
    return 1;
  }
  if (a.has("port-file")) {
    std::ofstream os(a.get("port-file"));
    if (!os) {
      std::fprintf(stderr, "net-route: cannot write %s\n",
                   a.get("port-file").c_str());
      return 1;
    }
    os << router.port() << "\n";
  }
  std::printf("net-route: listening on %s:%u, %zu replicas (%d vnodes "
              "each, probe every %lld ms)\n",
              ro.net.host.c_str(), unsigned(router.port()),
              ro.replicas.size(), ro.vnodes,
              static_cast<long long>(ro.probe_interval_ms));
  for (const auto& ep : ro.replicas)
    std::printf("  replica %s -> %s:%u\n", ep.name.c_str(), ep.host.c_str(),
                unsigned(ep.port));
  std::fflush(stdout);
  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);
  const long duration_ms = a.num("duration-ms", 0);
  const auto t0 = std::chrono::steady_clock::now();
  while (g_stop_requested == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    if (duration_ms > 0 &&
        std::chrono::steady_clock::now() - t0 >=
            std::chrono::milliseconds(duration_ms))
      break;
  }
  std::printf("net-route: draining...\n");
  std::fflush(stdout);
  router.stop();
  const router::RouterStats rs = router.stats();
  const net::FrontEndStats fs = router.net_stats();
  std::printf("net-route: drained. %llu conns accepted, %llu frames in, "
              "%llu forwarded, %llu replies, %llu requeued, %llu "
              "synthesized (%llu no-replica, %llu exhausted)\n",
              static_cast<unsigned long long>(fs.accepted),
              static_cast<unsigned long long>(fs.frames_in),
              static_cast<unsigned long long>(rs.forwarded),
              static_cast<unsigned long long>(rs.replies),
              static_cast<unsigned long long>(rs.requeued),
              static_cast<unsigned long long>(rs.synthesized),
              static_cast<unsigned long long>(rs.no_replica),
              static_cast<unsigned long long>(rs.exhausted));
  std::printf("net-route: %llu replica-down events, %llu probe failures\n",
              static_cast<unsigned long long>(rs.replica_down),
              static_cast<unsigned long long>(rs.probe_failures));
  for (const auto& h : router.health())
    std::printf("  replica %s: %s%s, %llu forwarded, %llu replies, "
                "%llu disconnects\n",
                h.name.c_str(), h.in_ring ? "in ring" : "out of ring",
                h.draining ? " (draining)" : "",
                static_cast<unsigned long long>(h.forwarded),
                static_cast<unsigned long long>(h.replies),
                static_cast<unsigned long long>(h.disconnects));
  if (tracing) {
    obs::Tracer::instance().stop();
    const long events =
        obs::export_chrome_trace(a.get("trace"), "npdp-router");
    if (events < 0) {
      std::fprintf(stderr, "net-route: cannot write %s\n",
                   a.get("trace").c_str());
      return 1;
    }
    std::printf("net-route: trace written to %s (%ld events)\n",
                a.get("trace").c_str(), events);
  }
  return 0;
}

/// One peer process of a distributed solve (docs/distributed.md). All
/// peers must be launched with the same --peers list and workload flags;
/// each passes its own --rank. The instance is the same pure generated
/// workload `npdp solve` uses, so a --save'd table from any rank can be
/// cmp'd byte-for-byte against `npdp solve --save` output — that is
/// exactly what verify.sh's dist phase does.
int cmd_dist_solve(const Args& a) {
  const auto rank = static_cast<std::uint32_t>(a.num("rank", -1));
  const std::vector<dist::PeerEndpoint> peers =
      dist::parse_peer_list(a.need("peers"));
  if (a.num("rank", -1) < 0 ||
      rank >= static_cast<std::uint32_t>(peers.size()))
    throw UsageError("--rank must name an entry in --peers (0.." +
                     std::to_string(peers.size() - 1) + ")");

  NpdpInstance<float> inst;
  inst.n = a.num("n", 1024);
  const std::uint64_t seed = static_cast<std::uint64_t>(a.num("seed", 1));
  SemiringId sr = SemiringId::MinPlus;
  if (a.has("semiring") && !semiring_from_name(a.get("semiring"), &sr))
    throw UsageError("unknown semiring '" + a.get("semiring") +
                     "' (min-plus|max-plus|counting|viterbi-log)");
  inst.semiring = sr;
  inst.init = [seed, sr](index_t i, index_t j) {
    return semiring_init_value<float>(sr, seed, i, j);
  };

  dist::DistOptions opts;
  opts.tuning.block_side = a.num("block", 64);
  opts.tuning.kernel = kernel_from(a.get("kernel", "simd128"));
  opts.tuning.threads = static_cast<std::size_t>(a.num("threads", 1));
  opts.group.connect_timeout_ms =
      static_cast<int>(a.num("connect-timeout-ms", 10000));
  opts.stall_timeout_ms = static_cast<int>(a.num("stall-timeout-ms", 60000));
  // The hello frame already carries n/block/semiring explicitly; the hash
  // covers what it cannot: the workload seed. A peer launched with a
  // different --seed fails the handshake instead of assembling garbage.
  opts.config_hash = resilience::fnv1a(&seed, sizeof(seed));

  // Optional ordinary-protocol stats port so `npdp top` can watch the
  // net.peer.* counters of a live peer.
  dist::StatsEndpoint stats_ep;
  if (a.has("stats-port")) {
    std::string err;
    if (!stats_ep.start("127.0.0.1",
                        static_cast<std::uint16_t>(a.num("stats-port", 0)),
                        &err))
      throw UsageError("--stats-port: " + err);
    std::printf("rank %u stats on 127.0.0.1:%u\n", rank,
                unsigned(stats_ep.port()));
    if (a.has("port-file")) {
      std::ofstream os(a.get("port-file"));
      if (!os) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     a.get("port-file").c_str());
        return 1;
      }
      os << stats_ep.port() << "\n";
    }
  }

  BlockedTriangularMatrix<float> mat(inst.n, opts.tuning.block_side,
                                     semiring_zero<float>(sr));
  dist::PeerGroup group(rank, peers, opts.group);
  dist::DistStats ds;
  Stopwatch sw;
  dist::solve_distributed_into(mat, inst, group, opts, &ds);
  const double s = sw.seconds();

  std::printf(
      "rank %u/%zu solved n=%lld (%s, block %lld, %zu threads) in %s\n",
      rank, peers.size(), static_cast<long long>(inst.n),
      std::string(semiring_name(sr)).c_str(),
      static_cast<long long>(opts.tuning.block_side), opts.tuning.threads,
      fmt_seconds(s).c_str());
  std::printf("  owned %lld  computed %lld  received %lld  "
              "sent %.2f MiB  received %.2f MiB  stalled %s\n",
              static_cast<long long>(ds.blocks_owned),
              static_cast<long long>(ds.blocks_computed),
              static_cast<long long>(ds.blocks_received),
              double(ds.bytes_sent) / (1 << 20),
              double(ds.bytes_received) / (1 << 20),
              fmt_seconds(ds.stall_seconds).c_str());
  std::printf("d[0][n-1] = %g\n", double(mat.at(0, inst.n - 1)));

  if (a.has("save")) {
    save_table_file(a.get("save"), mat);
    std::printf("saved to %s\n", a.get("save").c_str());
  }
  return 0;
}

void usage() {
  std::printf(
      "usage: npdp <solve|backends|check-trace|merge-traces|info|fold|parse"
      "|simulate|cluster|dist-solve|model|serve|bench-serve|net-serve"
      "|net-route|net-bench|top> [--key value ...]\n"
      "  dist-solve   one peer of a multi-process distributed solve\n"
      "               (--rank R --peers host:port,...; docs/distributed.md)\n"
      "  backends     list the registered solver backends (--backend names),\n"
      "               capabilities, and breaker health\n"
      "  serve        run the in-process solve service over a line-delimited\n"
      "               request stream (--requests <file|->)\n"
      "  bench-serve  closed/open-loop load generator; writes "
      "BENCH_serve.json\n"
      "  net-serve    epoll TCP front-end over the solve service; --tenants\n"
      "               enables per-tenant QoS (docs/networking.md)\n"
      "  net-route    consistent-hash router over net-serve replicas "
      "(--replicas\n"
      "               [name=]host:port,...; health-probed failover)\n"
      "  net-bench    network load generator against net-serve or "
      "net-route;\n"
      "               writes BENCH_net.json (--targets for several "
      "endpoints)\n"
      "  top          live stats view of a running net-serve (--prom for\n"
      "               Prometheus text exposition, --once for one poll)\n"
      "  merge-traces merge client+server Chrome traces onto one timeline\n"
      "(see the header of tools/npdp_tool.cpp for the full flag list)\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string cmd = argv[1];
  // The coordinator backend lives in the dist library (backend cannot link
  // dist without a cycle), so the binary that links both registers it.
  dist::register_distributed_backend();
  try {
    const Args a = parse_args(argc, argv, 2);
    if (cmd == "solve") return cmd_solve(a);
    if (cmd == "backends") return cmd_backends(a);
    if (cmd == "check-trace") return cmd_check_trace(a);
    if (cmd == "merge-traces") return cmd_merge_traces(a);
    if (cmd == "top") return cmd_top(a);
    if (cmd == "info") return cmd_info(a);
    if (cmd == "fold") return cmd_fold(a);
    if (cmd == "parse") return cmd_parse(a);
    if (cmd == "simulate") return cmd_simulate(a);
    if (cmd == "cluster") return cmd_cluster(a);
    if (cmd == "dist-solve") return cmd_dist_solve(a);
    if (cmd == "model") return cmd_model(a);
    if (cmd == "serve") return cmd_serve(a);
    if (cmd == "bench-serve") return cmd_bench_serve(a);
    if (cmd == "net-serve") return cmd_net_serve(a);
    if (cmd == "net-route") return cmd_net_route(a);
    if (cmd == "net-bench") return cmd_net_bench(a);
  } catch (const UsageError& e) {
    std::fprintf(stderr, "bad arguments: %s\n", e.what());
    return 3;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "unknown subcommand '%s'\n", cmd.c_str());
  usage();
  return 2;
}
