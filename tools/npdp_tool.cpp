// npdp — command-line front end to the cellnpdp library.
//
//   npdp solve     --n 4096 [--kernel simd128] [--block 64] [--threads 8]
//                  [--seed 1] [--maxplus] [--save table.bin]
//                  [--trace out.json] [--metrics out.json] [--report]
//   npdp check-trace --file out.json [--min-workers 1] [--expect-tasks N]
//   npdp info      --file table.bin
//   npdp fold      --seq ACGU... | --random 500 [--seed 7] [--threads 4]
//   npdp parse     --parens "(()())" | --anbn aaabbb
//   npdp simulate  --n 4096 [--spes 16] [--block 88] [--dp] [--trace out.csv]
//   npdp cluster   --n 4096 [--nodes 8] [--bw-gbps 3] [--lat-us 10]
//   npdp model     --n 4096 [--spes 16]
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <iterator>
#include <map>
#include <string>

#include "apps/cyk/cyk.hpp"
#include "apps/zuker/fold.hpp"
#include "bench_util/table.hpp"
#include "cellsim/npdp_sim.hpp"
#include "cluster/cluster_sim.hpp"
#include "common/json.hpp"
#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "core/maxplus.hpp"
#include "core/solve.hpp"
#include "io/table_io.hpp"
#include "model/perf_model.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "obs/trace_export.hpp"

using namespace cellnpdp;

namespace {

struct Args {
  std::map<std::string, std::string> kv;
  bool has(const std::string& k) const { return kv.count(k) > 0; }
  std::string get(const std::string& k, const std::string& dflt = "") const {
    auto it = kv.find(k);
    return it == kv.end() ? dflt : it->second;
  }
  long num(const std::string& k, long dflt) const {
    auto it = kv.find(k);
    return it == kv.end() ? dflt : std::atol(it->second.c_str());
  }
  double real(const std::string& k, double dflt) const {
    auto it = kv.find(k);
    return it == kv.end() ? dflt : std::atof(it->second.c_str());
  }
};

Args parse_args(int argc, char** argv, int first) {
  Args a;
  for (int i = first; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) continue;
    key = key.substr(2);
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      a.kv[key] = argv[++i];
    } else {
      a.kv[key] = "1";
    }
  }
  return a;
}

KernelKind kernel_from(const std::string& s) {
  if (s == "scalar") return KernelKind::Scalar;
  if (s == "simd256") return KernelKind::Wide;
  return KernelKind::Native;
}

int cmd_solve(const Args& a) {
  NpdpInstance<float> inst;
  inst.n = a.num("n", 1024);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(a.num("seed", 1));
  inst.init = [seed](index_t i, index_t j) {
    return random_init_value<float>(seed, i, j);
  };
  NpdpOptions opts;
  opts.block_side = a.num("block", 64);
  opts.kernel = kernel_from(a.get("kernel", "simd128"));
  opts.threads = static_cast<std::size_t>(a.num("threads", 1));

  const bool tracing = a.has("trace");
  const bool want_report = a.has("report");
  if (tracing)
    obs::Tracer::instance().start(
        static_cast<std::size_t>(a.num("trace-buf", 1 << 18)));

  Stopwatch sw;
  SolveStats ss;
  SolveStats* ssp = (want_report || a.has("metrics")) ? &ss : nullptr;
  BlockedTriangularMatrix<float> table =
      a.has("maxplus") ? solve_blocked_maxplus(inst, opts)
                       : solve_blocked(inst, opts, ssp);
  const double s = sw.seconds();
  if (tracing) obs::Tracer::instance().stop();
  std::printf("solved n=%lld (%s, block %lld, %zu threads) in %s\n",
              static_cast<long long>(inst.n),
              std::string(kernel_kind_name(opts.kernel)).c_str(),
              static_cast<long long>(opts.block_side), opts.threads,
              fmt_seconds(s).c_str());
  std::printf("d[0][n-1] = %g; %.2f G relax/s\n",
              double(table.at(0, inst.n - 1)),
              double(npdp_relaxations(inst.n)) / s / 1e9);
  if (a.has("save")) {
    save_table_file(a.get("save"), table);
    std::printf("saved to %s\n", a.get("save").c_str());
  }

  if (tracing) {
    const long events = obs::export_chrome_trace(a.get("trace"));
    if (events < 0) {
      std::fprintf(stderr, "error: cannot write %s\n",
                   a.get("trace").c_str());
      return 1;
    }
    std::printf("trace written to %s (%ld events; open in "
                "https://ui.perfetto.dev)\n",
                a.get("trace").c_str(), events);
    std::uint64_t dropped = 0;
    for (const auto& t : obs::Tracer::instance().snapshot())
      dropped += t.dropped;
    if (dropped > 0)
      std::printf("warning: %llu events dropped (ring full); rerun with a "
                  "larger --trace-buf\n",
                  static_cast<unsigned long long>(dropped));
  }
  if (a.has("metrics")) {
    // Fold the solve's work counters into the registry before dumping so
    // the snapshot carries engine phases alongside scheduler metrics.
    obs::metrics().counter("engine.kernel_calls").add(ss.engine.kernel_calls);
    obs::metrics().counter("engine.corner_relax").add(ss.engine.corner_relax);
    obs::metrics().counter("engine.diag_relax").add(ss.engine.diag_relax);
    obs::metrics()
        .counter("engine.cells_finalized")
        .add(ss.engine.cells_finalized);
    std::ofstream os(a.get("metrics"));
    if (!os) {
      std::fprintf(stderr, "error: cannot write %s\n",
                   a.get("metrics").c_str());
      return 1;
    }
    obs::metrics().write_json(os);
    std::printf("metrics written to %s\n", a.get("metrics").c_str());
  }
  if (want_report) {
    obs::UtilizationReport rep;
    rep.wall_seconds = ss.wall_seconds;
    rep.worker_busy = ss.worker_busy;
    if (tracing)
      rep.phases =
          obs::aggregate_phase_totals(obs::Tracer::instance().snapshot());
    ModelParams p;
    p.n1 = double(inst.n);
    p.cores = double(std::max<std::size_t>(1, opts.threads));
    p.n2_override = double(opts.block_side);
    print_utilization_report(std::cout, rep, p);
  }
  return 0;
}

/// Validates a Chrome trace-event JSON file written by --trace: parses
/// it, checks every span is well-formed, and counts worker lanes and
/// scheduling-block task spans. Used by verify.sh so tracing cannot rot
/// silently.
int cmd_check_trace(const Args& a) {
  const std::string path = a.get("file");
  std::ifstream is(path);
  if (!is) {
    std::fprintf(stderr, "check-trace: cannot open %s\n", path.c_str());
    return 1;
  }
  std::string text((std::istreambuf_iterator<char>(is)),
                   std::istreambuf_iterator<char>());
  JsonValue root;
  std::string err;
  if (!json_parse(text, root, &err)) {
    std::fprintf(stderr, "check-trace: malformed JSON: %s\n", err.c_str());
    return 1;
  }
  if (!root.is_object() || !root.has("traceEvents") ||
      !root.at("traceEvents").is_array()) {
    std::fprintf(stderr, "check-trace: missing traceEvents array\n");
    return 1;
  }
  const auto& events = root.at("traceEvents").arr;
  std::map<long, long> spans_per_tid;
  std::map<std::string, long> spans_per_cat;
  long tasks = 0, bad = 0;
  for (const JsonValue& ev : events) {
    if (!ev.is_object() || !ev.has("ph") || !ev.at("ph").is_string()) {
      ++bad;
      continue;
    }
    if (ev.at("ph").str != "X") continue;
    if (!ev.has("ts") || !ev.at("ts").is_number() || !ev.has("dur") ||
        !ev.at("dur").is_number() || ev.at("dur").number < 0 ||
        !ev.has("name") || !ev.has("cat") || !ev.has("tid")) {
      ++bad;
      continue;
    }
    ++spans_per_tid[long(ev.at("tid").number)];
    ++spans_per_cat[ev.at("cat").str];
    if (ev.at("name").str == "task") ++tasks;
  }
  long total_spans = 0;
  for (const auto& [tid, cnt] : spans_per_tid) total_spans += cnt;
  std::printf("check-trace: %zu events, %ld spans on %zu lane%s, %ld task "
              "spans\n",
              events.size(), total_spans, spans_per_tid.size(),
              spans_per_tid.size() == 1 ? "" : "s", tasks);
  for (const auto& [cat, cnt] : spans_per_cat)
    std::printf("  cat %-10s %ld spans\n", cat.c_str(), cnt);
  if (bad > 0) {
    std::fprintf(stderr, "check-trace: %ld malformed events\n", bad);
    return 1;
  }
  const long min_workers = a.num("min-workers", 1);
  if (long(spans_per_tid.size()) < min_workers) {
    std::fprintf(stderr,
                 "check-trace: expected >= %ld worker lanes, found %zu\n",
                 min_workers, spans_per_tid.size());
    return 1;
  }
  if (a.has("expect-tasks") && tasks != a.num("expect-tasks", -1)) {
    std::fprintf(stderr, "check-trace: expected %ld task spans, found %ld\n",
                 a.num("expect-tasks", -1), tasks);
    return 1;
  }
  for (const char* cat : {"middle", "inner", "corner"}) {
    if (spans_per_cat.count(cat) == 0) {
      std::fprintf(stderr, "check-trace: no '%s' engine spans recorded\n",
                   cat);
      return 1;
    }
  }
  std::printf("check-trace: OK\n");
  return 0;
}

int cmd_info(const Args& a) {
  const std::string path = a.get("file");
  const auto table = load_blocked_file<float>(path);
  std::printf("%s: blocked table, n=%lld, block side %lld (%s), %s total\n",
              path.c_str(), static_cast<long long>(table.size()),
              static_cast<long long>(table.block_side()),
              fmt_bytes(double(table.block_bytes())).c_str(),
              fmt_bytes(double(table.total_cells()) * 4).c_str());
  std::printf("d[0][n-1] = %g\n", double(table.at(0, table.size() - 1)));
  return 0;
}

int cmd_fold(const Args& a) {
  std::vector<zuker::Base> seq;
  if (a.has("seq")) {
    seq = zuker::parse_sequence(a.get("seq"));
  } else {
    seq = zuker::random_sequence(a.num("random", 300),
                                 static_cast<std::uint64_t>(a.num("seed", 7)));
  }
  zuker::FoldOptions fo;
  fo.threads = static_cast<std::size_t>(a.num("threads", 1));
  zuker::ZukerFolder folder({}, fo);
  Stopwatch sw;
  const auto r = folder.fold(seq);
  std::printf("%s\n%s\n", zuker::bases_to_string(seq).c_str(),
              r.structure.c_str());
  std::printf("MFE %.2f, %zu pairs, %s\n", double(r.mfe), r.pairs.size(),
              fmt_seconds(sw.seconds()).c_str());
  return 0;
}

int cmd_parse(const Args& a) {
  cyk::Grammar g = cyk::balanced_parens_grammar();
  std::string alphabet = "()";
  std::string text = a.get("parens", "(()())");
  if (a.has("anbn")) {
    g = cyk::anbn_grammar();
    alphabet = "ab";
    text = a.get("anbn");
  }
  cyk::CykParser parser(g);
  const auto r = parser.parse(cyk::tokens_from_string(text, alphabet));
  std::printf("%s: %s", text.c_str(),
              r.accepted() ? "accepted" : "rejected");
  if (r.accepted()) std::printf(" (cost %.1f)", double(r.cost));
  std::printf("\n");
  return r.accepted() ? 0 : 1;
}

int cmd_simulate(const Args& a) {
  CellConfig cfg = qs20();
  cfg.num_spes = static_cast<int>(a.num("spes", 16));
  CellSimOptions o;
  o.block_side = a.num("block", a.has("dp") ? 64 : 88);
  o.record_trace = a.has("trace");
  auto report = [&](auto tag) {
    using T = decltype(tag);
    NpdpInstance<T> inst;
    inst.n = a.num("n", 4096);
    inst.init = [](index_t, index_t) { return T(1); };
    const auto r = simulate_cellnpdp(inst, cfg, o);
    std::printf("simulated %s n=%lld on %d SPEs (block %lld): %s\n",
                sizeof(T) == 4 ? "SP" : "DP",
                static_cast<long long>(inst.n), cfg.num_spes,
                static_cast<long long>(o.block_side),
                fmt_seconds(r.seconds).c_str());
    std::printf("DMA in %s, utilization %s, kernel %d cycles\n",
                fmt_bytes(double(r.dma_bytes_in)).c_str(),
                fmt_pct(r.utilization).c_str(), r.kernel_cycles);
    if (a.has("trace")) {
      std::ofstream os(a.get("trace"));
      r.write_trace_csv(os);
      std::printf("trace written to %s (%zu events)\n",
                  a.get("trace").c_str(), r.trace.size());
    }
  };
  if (a.has("dp")) {
    report(double{});
  } else {
    report(float{});
  }
  return 0;
}

int cmd_cluster(const Args& a) {
  NpdpInstance<float> inst;
  inst.n = a.num("n", 4096);
  inst.init = [](index_t, index_t) { return 1.0f; };
  ClusterConfig cfg;
  cfg.nodes = static_cast<int>(a.num("nodes", 8));
  cfg.link_bandwidth = a.real("bw-gbps", 3.0) * 1e9;
  cfg.link_latency = a.real("lat-us", 10.0) * 1e-6;
  ClusterSimOptions o;
  o.block_side = a.num("block", 64);
  const auto r = simulate_cluster_npdp(inst, cfg, o);
  std::printf("cluster n=%lld on %d nodes: %s, comm %s, efficiency %s\n",
              static_cast<long long>(inst.n), cfg.nodes,
              fmt_seconds(r.seconds).c_str(),
              fmt_bytes(double(r.comm_bytes)).c_str(),
              fmt_pct(r.efficiency).c_str());
  return 0;
}

int cmd_model(const Args& a) {
  ModelParams p;
  p.n1 = double(a.num("n", 4096));
  p.cores = double(a.num("spes", 16));
  const auto sp = spu_latencies(Precision::Single);
  p.kernel_cycles = kernel_steady_cycles(4, sp);
  p.n2_override = double(a.num("block", 88));
  std::printf("T_M=%s T_C=%s T_all=%s U=%s %s-bound (B_req %s/s)\n",
              fmt_seconds(model_memory_time(p)).c_str(),
              fmt_seconds(model_compute_time(p)).c_str(),
              fmt_seconds(model_total_time(p)).c_str(),
              fmt_pct(model_utilization(p)).c_str(),
              model_compute_bound(p) ? "compute" : "memory",
              fmt_bytes(model_required_bandwidth(p)).c_str());
  return 0;
}

void usage() {
  std::printf(
      "usage: npdp <solve|check-trace|info|fold|parse|simulate|cluster|model> "
      "[--key value ...]\n(see the header of tools/npdp_tool.cpp for the "
      "full flag list)\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string cmd = argv[1];
  const Args a = parse_args(argc, argv, 2);
  try {
    if (cmd == "solve") return cmd_solve(a);
    if (cmd == "check-trace") return cmd_check_trace(a);
    if (cmd == "info") return cmd_info(a);
    if (cmd == "fold") return cmd_fold(a);
    if (cmd == "parse") return cmd_parse(a);
    if (cmd == "simulate") return cmd_simulate(a);
    if (cmd == "cluster") return cmd_cluster(a);
    if (cmd == "model") return cmd_model(a);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  usage();
  return 2;
}
