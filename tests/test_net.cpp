// Tests for src/net: wire-protocol encode/decode round-trips (property
// style over seeded random payloads), truncation at every byte boundary,
// defensive decoding (bad magic / bad version / oversized / malformed /
// unknown type), and the epoll server end to end over loopback — all five
// request kinds, pipelined graceful drain, deadline expiry over the wire,
// mid-request disconnect, slow-loris idle timeout, and the load generator.
#include <gtest/gtest.h>
#include <sys/socket.h>

#include <chrono>
#include <cstring>
#include <set>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "apps/matrix_chain/matrix_chain.hpp"
#include "dist/peer_wire.hpp"
#include "apps/optimal_bst/optimal_bst.hpp"
#include "common/json.hpp"
#include "common/rng.hpp"
#include "net/client.hpp"
#include "net/loadgen.hpp"
#include "net/protocol.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "obs/span_context.hpp"
#include "obs/trace.hpp"
#include "serve/solver_pool.hpp"

namespace cellnpdp::net {
namespace {

using std::chrono::milliseconds;
using Reply = NpdpClient::Reply;
using RecvStatus = NpdpClient::RecvStatus;

std::string random_text(SplitMix64& rng, std::size_t max_len) {
  std::string s(rng.next_below(max_len + 1), '\0');
  for (char& c : s) c = static_cast<char>(rng.next_below(256));
  return s;
}

WireRequest random_request(SplitMix64& rng, int kind) {
  WireRequest w;
  w.id = rng.next_u64();
  w.priority = static_cast<std::int32_t>(rng.next_u64());
  w.deadline_ms = static_cast<std::uint32_t>(rng.next_below(1u << 20));
  // Half the requests carry a trace context (v2 optional field).
  if (rng.next_below(2) == 0) {
    w.trace.trace_id = 1 + rng.next_u64() % 0xFFFFFFFFull;
    w.trace.parent_span_id = rng.next_u64();
    w.trace.sampled = rng.next_below(2) == 0;
  }
  // And half carry a QoS tenant tag (the other v2 optional field).
  if (rng.next_below(2) == 0)
    w.tenant = static_cast<std::uint16_t>(1 + rng.next_below(255));
  switch (kind) {
    case 0: {
      serve::SolveSpec s;
      s.n = static_cast<index_t>(1 + rng.next_below(4096));
      s.seed = rng.next_u64();
      s.block_side = static_cast<index_t>(1 + rng.next_below(128));
      s.kernel = static_cast<KernelKind>(rng.next_below(3));
      s.backend = random_text(rng, 24);
      s.semiring = static_cast<SemiringId>(rng.next_below(kSemiringCount));
      w.payload = s;
      break;
    }
    case 1: {
      serve::FoldSpec f;
      f.random_n = static_cast<index_t>(1 + rng.next_below(1024));
      f.seed = rng.next_u64();
      f.seq = random_text(rng, 48);
      w.payload = f;
      break;
    }
    case 2: {
      serve::ParseSpec p;
      p.grammar = static_cast<serve::ParseSpec::GrammarKind>(rng.next_below(2));
      p.text = random_text(rng, 48);
      w.payload = p;
      break;
    }
    case 3: {
      serve::ChainSpec c;
      c.n = static_cast<index_t>(1 + rng.next_below(512));
      c.seed = rng.next_u64();
      w.payload = c;
      break;
    }
    default: {
      serve::BstSpec b;
      b.keys = static_cast<index_t>(1 + rng.next_below(512));
      b.seed = rng.next_u64();
      w.payload = b;
      break;
    }
  }
  return w;
}

// --- protocol round-trips --------------------------------------------------

TEST(Protocol, RequestRoundTripsOverSeededRandomPayloads) {
  SplitMix64 rng(2026);
  for (int iter = 0; iter < 200; ++iter) {
    const int kind = iter % 5;
    const WireRequest in = random_request(rng, kind);
    const std::vector<std::uint8_t> frame = encode_request(in);

    FrameHeader h;
    ASSERT_EQ(parse_header(frame.data(), frame.size(), &h), HeaderParse::Ok);
    EXPECT_EQ(h.version, kVersion);
    EXPECT_EQ(h.id, in.id);
    ASSERT_EQ(frame.size(), kHeaderSize + h.len);

    WireRequest out;
    std::string err;
    ASSERT_TRUE(decode_request_payload(h.type, h.version, h.id,
                                       frame.data() + kHeaderSize, h.len, &out,
                                       &err))
        << "kind " << kind << ": " << err;
    EXPECT_EQ(out.id, in.id);
    EXPECT_EQ(out.priority, in.priority);
    EXPECT_EQ(out.deadline_ms, in.deadline_ms);
    EXPECT_EQ(out.trace.trace_id, in.trace.trace_id);
    EXPECT_EQ(out.trace.parent_span_id, in.trace.parent_span_id);
    EXPECT_EQ(out.trace.sampled, in.trace.sampled);
    EXPECT_EQ(out.tenant, in.tenant);
    ASSERT_EQ(out.payload.index(), in.payload.index());
    if (const auto* s = std::get_if<serve::SolveSpec>(&in.payload)) {
      const auto& o = std::get<serve::SolveSpec>(out.payload);
      EXPECT_EQ(o.n, s->n);
      EXPECT_EQ(o.seed, s->seed);
      EXPECT_EQ(o.block_side, s->block_side);
      EXPECT_EQ(o.kernel, s->kernel);
      EXPECT_EQ(o.backend, s->backend);
      EXPECT_EQ(o.semiring, s->semiring);
    } else if (const auto* f = std::get_if<serve::FoldSpec>(&in.payload)) {
      const auto& o = std::get<serve::FoldSpec>(out.payload);
      EXPECT_EQ(o.random_n, f->random_n);
      EXPECT_EQ(o.seed, f->seed);
      EXPECT_EQ(o.seq, f->seq);
    } else if (const auto* p = std::get_if<serve::ParseSpec>(&in.payload)) {
      const auto& o = std::get<serve::ParseSpec>(out.payload);
      EXPECT_EQ(o.grammar, p->grammar);
      EXPECT_EQ(o.text, p->text);
    } else if (const auto* c = std::get_if<serve::ChainSpec>(&in.payload)) {
      const auto& o = std::get<serve::ChainSpec>(out.payload);
      EXPECT_EQ(o.n, c->n);
      EXPECT_EQ(o.seed, c->seed);
    } else {
      const auto& b = std::get<serve::BstSpec>(in.payload);
      const auto& o = std::get<serve::BstSpec>(out.payload);
      EXPECT_EQ(o.keys, b.keys);
      EXPECT_EQ(o.seed, b.seed);
    }
  }
}

TEST(Protocol, ResponseRoundTripsOverSeededRandomPayloads) {
  SplitMix64 rng(77);
  for (int iter = 0; iter < 200; ++iter) {
    WireResponse in;
    in.id = rng.next_u64();
    in.status = static_cast<serve::Status>(rng.next_below(9));
    in.value = rng.next_in(-1e9, 1e9);
    in.queue_ns = static_cast<std::int64_t>(rng.next_u64() >> 1);
    in.solve_ns = static_cast<std::int64_t>(rng.next_u64() >> 1);
    in.total_ns = static_cast<std::int64_t>(rng.next_u64() >> 1);
    in.retry_after_ms = static_cast<std::int64_t>(rng.next_below(100000));
    in.backend = random_text(rng, 24);
    in.detail = random_text(rng, 100);
    const auto frame = encode_response(in);

    FrameHeader h;
    ASSERT_EQ(parse_header(frame.data(), frame.size(), &h), HeaderParse::Ok);
    ASSERT_EQ(h.type, MsgType::Result);
    WireResponse out;
    std::string err;
    ASSERT_TRUE(decode_response_payload(h.id, frame.data() + kHeaderSize,
                                        h.len, &out, &err))
        << err;
    EXPECT_EQ(out.id, in.id);
    EXPECT_EQ(out.status, in.status);
    EXPECT_EQ(out.value, in.value);
    EXPECT_EQ(out.queue_ns, in.queue_ns);
    EXPECT_EQ(out.solve_ns, in.solve_ns);
    EXPECT_EQ(out.total_ns, in.total_ns);
    EXPECT_EQ(out.retry_after_ms, in.retry_after_ms);
    EXPECT_EQ(out.backend, in.backend);
    EXPECT_EQ(out.detail, in.detail);
  }
}

TEST(Protocol, ControlFramesRoundTrip) {
  const auto ping = encode_ping(42);
  FrameHeader h;
  ASSERT_EQ(parse_header(ping.data(), ping.size(), &h), HeaderParse::Ok);
  EXPECT_EQ(h.type, MsgType::Ping);
  EXPECT_EQ(h.id, 42u);
  EXPECT_EQ(h.len, 0u);

  const std::string json = "{\"net\":{\"accepted\":3}}";
  const auto st = encode_stats_text(7, json);
  ASSERT_EQ(parse_header(st.data(), st.size(), &h), HeaderParse::Ok);
  std::string back;
  ASSERT_TRUE(decode_stats_text(st.data() + kHeaderSize, h.len, &back));
  EXPECT_EQ(back, json);

  const auto pe =
      encode_proto_error(9, ProtoErrorCode::BadPayload, "chain: n must be >= 1");
  ASSERT_EQ(parse_header(pe.data(), pe.size(), &h), HeaderParse::Ok);
  ProtoErrorCode code;
  std::string msg;
  ASSERT_TRUE(decode_proto_error(pe.data() + kHeaderSize, h.len, &code, &msg));
  EXPECT_EQ(code, ProtoErrorCode::BadPayload);
  EXPECT_EQ(msg, "chain: n must be >= 1");
}

TEST(Protocol, TruncationAtEveryByteBoundaryFailsCleanly) {
  SplitMix64 rng(5);
  for (int kind = 0; kind < 5; ++kind) {
    const WireRequest in = random_request(rng, kind);
    const auto frame = encode_request(in);
    FrameHeader h;
    ASSERT_EQ(parse_header(frame.data(), frame.size(), &h), HeaderParse::Ok);
    // Every header prefix is just "need more bytes", never a parse.
    for (std::size_t cut = 0; cut < kHeaderSize; ++cut)
      EXPECT_EQ(parse_header(frame.data(), cut, &h), HeaderParse::NeedMore)
          << "cut " << cut;
    // Every proper payload prefix must fail decode — at every boundary.
    // One designed exception: the semiring tag is an optional trailing
    // byte, so cutting exactly it leaves a valid pre-semiring Solve frame
    // (that is what backward compatibility means) which decodes as the
    // min-plus default.
    const auto* sp = std::get_if<serve::SolveSpec>(&in.payload);
    const bool tagged = sp && sp->semiring != SemiringId::MinPlus;
    for (std::size_t cut = 0; cut < h.len; ++cut) {
      WireRequest out;
      std::string err;
      if (tagged && cut == h.len - 1) {
        ASSERT_TRUE(decode_request_payload(h.type, h.version, h.id,
                                           frame.data() + kHeaderSize, cut,
                                           &out, &err))
            << err;
        EXPECT_EQ(std::get<serve::SolveSpec>(out.payload).semiring,
                  SemiringId::MinPlus);
        continue;
      }
      EXPECT_FALSE(decode_request_payload(h.type, h.version, h.id,
                                          frame.data() + kHeaderSize, cut,
                                          &out, &err))
          << "kind " << kind << " cut " << cut << "/" << h.len;
    }
  }
}

TEST(Protocol, TrailingBytesAndBadEnumsFailDecode) {
  WireRequest in;
  in.id = 1;
  in.payload = serve::ChainSpec{8, 3};
  auto frame = encode_request(in);
  frame.push_back(0);  // one trailing byte after a valid payload
  FrameHeader h;
  ASSERT_EQ(parse_header(frame.data(), frame.size(), &h), HeaderParse::Ok);
  WireRequest out;
  std::string err;
  EXPECT_FALSE(decode_request_payload(h.type, h.version, h.id,
                                      frame.data() + kHeaderSize,
                                      frame.size() - kHeaderSize, &out, &err));
  EXPECT_NE(err.find("trailing"), std::string::npos) << err;

  // Kernel byte out of range in a Solve payload.
  WireRequest sv;
  sv.id = 2;
  sv.payload = serve::SolveSpec{};
  auto sf = encode_request(sv);
  // v2 payload layout: [prio 4][deadline 4][flags 1][n 8][seed 8][block 8]
  // [kernel 1]... (no trace ids here: the flags byte is 0).
  sf[kHeaderSize + 4 + 4 + 1 + 8 + 8 + 8] = 0x7F;
  ASSERT_EQ(parse_header(sf.data(), sf.size(), &h), HeaderParse::Ok);
  EXPECT_FALSE(decode_request_payload(h.type, h.version, h.id,
                                      sf.data() + kHeaderSize,
                                      sf.size() - kHeaderSize, &out, &err));
  EXPECT_NE(err.find("kernel"), std::string::npos) << err;

  // Status code out of range in a Result payload.
  WireResponse wr;
  wr.id = 3;
  auto rf = encode_response(wr);
  rf[kHeaderSize] = 0xFF;
  rf[kHeaderSize + 1] = 0xFF;
  ASSERT_EQ(parse_header(rf.data(), rf.size(), &h), HeaderParse::Ok);
  WireResponse rout;
  EXPECT_FALSE(decode_response_payload(h.id, rf.data() + kHeaderSize,
                                       rf.size() - kHeaderSize, &rout, &err));
}

TEST(Protocol, SolveSemiringTagRoundTripsForEveryValue) {
  for (std::uint8_t sr = 0; sr < kSemiringCount; ++sr) {
    WireRequest in;
    in.id = 40 + sr;
    serve::SolveSpec s;
    s.n = 64;
    s.seed = 9;
    s.block_side = 16;
    s.semiring = static_cast<SemiringId>(sr);
    in.payload = s;
    const auto frame = encode_request(in);
    FrameHeader h;
    ASSERT_EQ(parse_header(frame.data(), frame.size(), &h), HeaderParse::Ok);
    WireRequest out;
    std::string err;
    ASSERT_TRUE(decode_request_payload(h.type, h.version, h.id,
                                       frame.data() + kHeaderSize, h.len, &out,
                                       &err))
        << semiring_name(static_cast<SemiringId>(sr)) << ": " << err;
    EXPECT_EQ(std::get<serve::SolveSpec>(out.payload).semiring,
              static_cast<SemiringId>(sr));
  }
}

TEST(Protocol, MinPlusSolveFramesOmitTheSemiringTag) {
  // The tag is a trailing optional: min-plus (the default) encodes without
  // it, keeping frames byte-identical to the pre-semiring layout so old
  // decoders keep working; any other semiring appends exactly one byte.
  WireRequest w;
  w.id = 7;
  serve::SolveSpec s;
  s.n = 96;
  s.seed = 3;
  s.block_side = 32;
  w.payload = s;
  const auto plain = encode_request(w);
  s.semiring = SemiringId::Counting;
  w.payload = s;
  const auto tagged = encode_request(w);
  EXPECT_EQ(tagged.size(), plain.size() + 1);
  EXPECT_EQ(tagged.back(), static_cast<std::uint8_t>(SemiringId::Counting));

  // And a tag-free frame (an old client) decodes to min-plus.
  FrameHeader h;
  ASSERT_EQ(parse_header(plain.data(), plain.size(), &h), HeaderParse::Ok);
  WireRequest out;
  std::string err;
  ASSERT_TRUE(decode_request_payload(h.type, h.version, h.id,
                                     plain.data() + kHeaderSize, h.len, &out,
                                     &err))
      << err;
  EXPECT_EQ(std::get<serve::SolveSpec>(out.payload).semiring,
            SemiringId::MinPlus);
}

TEST(Protocol, SemiringByteOutOfRangeFailsDecode) {
  WireRequest w;
  w.id = 8;
  serve::SolveSpec s;
  s.n = 48;
  s.block_side = 8;
  s.semiring = SemiringId::MaxPlus;
  w.payload = s;
  auto frame = encode_request(w);
  frame.back() = 0x2A;  // the tag is the last payload byte; 42 is no semiring
  FrameHeader h;
  ASSERT_EQ(parse_header(frame.data(), frame.size(), &h), HeaderParse::Ok);
  WireRequest out;
  std::string err;
  EXPECT_FALSE(decode_request_payload(h.type, h.version, h.id,
                                      frame.data() + kHeaderSize,
                                      frame.size() - kHeaderSize, &out, &err));
  EXPECT_NE(err.find("semiring"), std::string::npos) << err;
}

// --- tenant tag (mirrors the semiring-tag suite: optional, default-
// omitted, range-checked, truncation-safe) --------------------------------

TEST(Protocol, TenantTagRoundTripsForBoundaryValues) {
  for (const std::uint16_t tenant : {1, 42, 255}) {
    WireRequest in;
    in.id = 100 + tenant;
    in.priority = 3;
    in.deadline_ms = 250;
    in.tenant = tenant;
    in.payload = serve::ChainSpec{16, 5};
    const auto frame = encode_request(in);
    FrameHeader h;
    ASSERT_EQ(parse_header(frame.data(), frame.size(), &h), HeaderParse::Ok);
    WireRequest out;
    std::string err;
    ASSERT_TRUE(decode_request_payload(h.type, h.version, h.id,
                                       frame.data() + kHeaderSize, h.len,
                                       &out, &err))
        << "tenant " << tenant << ": " << err;
    EXPECT_EQ(out.tenant, tenant);
    EXPECT_EQ(out.priority, in.priority);
    EXPECT_EQ(out.deadline_ms, in.deadline_ms);
  }
}

TEST(Protocol, DefaultTenantFramesOmitTheTenantTag) {
  // Tenant 0 (every untagged/legacy client) is never encoded: the frame
  // must be byte-identical to the pre-tenant layout, and a tagged frame
  // costs exactly two extra bytes (the u16 after the trace block).
  WireRequest w;
  w.id = 7;
  w.payload = serve::ChainSpec{16, 5};
  const auto plain = encode_request(w);
  w.tenant = 9;
  const auto tagged = encode_request(w);
  EXPECT_EQ(tagged.size(), plain.size() + 2);

  FrameHeader h;
  ASSERT_EQ(parse_header(plain.data(), plain.size(), &h), HeaderParse::Ok);
  WireRequest out;
  std::string err;
  ASSERT_TRUE(decode_request_payload(h.type, h.version, h.id,
                                     plain.data() + kHeaderSize, h.len, &out,
                                     &err))
      << err;
  EXPECT_EQ(out.tenant, 0);

  // A v1 frame (no flags byte at all) also lands on the default tenant.
  const auto v1 = encode_request(w, /*version=*/1);
  ASSERT_EQ(parse_header(v1.data(), v1.size(), &h), HeaderParse::Ok);
  ASSERT_TRUE(decode_request_payload(h.type, h.version, h.id,
                                     v1.data() + kHeaderSize, h.len, &out,
                                     &err))
      << err;
  EXPECT_EQ(out.tenant, 0);
}

TEST(Protocol, TenantIdOutOfRangeFailsDecode) {
  WireRequest w;
  w.id = 8;
  w.tenant = 5;
  w.payload = serve::ChainSpec{16, 5};
  auto frame = encode_request(w);
  // No trace context, so the tenant u16 (little-endian) sits right after
  // the common prefix: [prio 4][deadline 4][flags 1].
  const std::size_t off = kHeaderSize + 4 + 4 + 1;
  frame[off] = 0xFF;
  frame[off + 1] = 0xFF;  // 65535 >= kMaxTenants
  FrameHeader h;
  ASSERT_EQ(parse_header(frame.data(), frame.size(), &h), HeaderParse::Ok);
  WireRequest out;
  std::string err;
  EXPECT_FALSE(decode_request_payload(h.type, h.version, h.id,
                                      frame.data() + kHeaderSize, h.len, &out,
                                      &err));
  EXPECT_NE(err.find("tenant"), std::string::npos) << err;
}

TEST(Protocol, TenantFlagWithZeroTenantFailsDecode) {
  // Flag bit set but id zero is unrepresentable by the encoder — a frame
  // like that is corrupt, not "default tenant".
  WireRequest w;
  w.id = 9;
  w.tenant = 5;
  w.payload = serve::ChainSpec{16, 5};
  auto frame = encode_request(w);
  const std::size_t off = kHeaderSize + 4 + 4 + 1;
  frame[off] = 0;
  frame[off + 1] = 0;
  FrameHeader h;
  ASSERT_EQ(parse_header(frame.data(), frame.size(), &h), HeaderParse::Ok);
  WireRequest out;
  std::string err;
  EXPECT_FALSE(decode_request_payload(h.type, h.version, h.id,
                                      frame.data() + kHeaderSize, h.len, &out,
                                      &err));
  EXPECT_NE(err.find("tenant"), std::string::npos) << err;
}

TEST(Protocol, TenantTaggedFrameTruncationFailsCleanly) {
  // Unlike the semiring tag the tenant u16 is NOT trailing — it sits in
  // the request prefix — so every truncation of a tenant-tagged frame
  // must fail decode (there is no "valid shorter frame" to fall back to).
  WireRequest w;
  w.id = 10;
  w.tenant = 200;
  w.trace.trace_id = 77;  // trace + tenant together: the full v2 prefix
  w.trace.parent_span_id = 5;
  w.payload = serve::ChainSpec{16, 5};
  const auto frame = encode_request(w);
  FrameHeader h;
  ASSERT_EQ(parse_header(frame.data(), frame.size(), &h), HeaderParse::Ok);
  for (std::size_t cut = 0; cut < h.len; ++cut) {
    WireRequest out;
    std::string err;
    EXPECT_FALSE(decode_request_payload(h.type, h.version, h.id,
                                        frame.data() + kHeaderSize, cut, &out,
                                        &err))
        << "cut " << cut << "/" << h.len;
  }
}

TEST(Protocol, BadMagicIsDetected) {
  auto frame = encode_ping(1);
  frame[0] ^= 0x5A;
  FrameHeader h;
  EXPECT_EQ(parse_header(frame.data(), frame.size(), &h),
            HeaderParse::BadMagic);
}

TEST(Protocol, StatusWireCodesAreFrozen) {
  // Appended-only: these exact values are the compatibility contract.
  EXPECT_EQ(wire_status(serve::Status::Ok), 0);
  EXPECT_EQ(wire_status(serve::Status::OkCached), 1);
  EXPECT_EQ(wire_status(serve::Status::Rejected), 2);
  EXPECT_EQ(wire_status(serve::Status::Shed), 3);
  EXPECT_EQ(wire_status(serve::Status::Expired), 4);
  EXPECT_EQ(wire_status(serve::Status::Cancelled), 5);
  EXPECT_EQ(wire_status(serve::Status::Error), 6);
  EXPECT_EQ(wire_status(serve::Status::Degraded), 7);
  EXPECT_EQ(wire_status(serve::Status::RetryAfter), 8);
  serve::Status s;
  EXPECT_TRUE(status_from_wire(8, &s));
  EXPECT_FALSE(status_from_wire(9, &s));
}

// --- version compatibility (v1 <-> v2) -------------------------------------

TEST(Protocol, LegacyV1FramesDecodeWithoutTraceContext) {
  // A new client can still emit v1 frames, and a new decoder accepts
  // them: same payload bytes as before the version bump, no trace field.
  SplitMix64 rng(404);
  for (int kind = 0; kind < 5; ++kind) {
    WireRequest in = random_request(rng, kind);
    in.trace = {};  // v1 cannot carry a context
    const auto frame = encode_request(in, /*version=*/1);
    FrameHeader h;
    ASSERT_EQ(parse_header(frame.data(), frame.size(), &h), HeaderParse::Ok);
    EXPECT_EQ(h.version, 1u);
    WireRequest out;
    std::string err;
    ASSERT_TRUE(decode_request_payload(h.type, h.version, h.id,
                                       frame.data() + kHeaderSize, h.len,
                                       &out, &err))
        << "kind " << kind << ": " << err;
    EXPECT_EQ(out.id, in.id);
    EXPECT_EQ(out.priority, in.priority);
    EXPECT_EQ(out.deadline_ms, in.deadline_ms);
    EXPECT_EQ(out.trace.trace_id, 0u);
    EXPECT_FALSE(out.trace.sampled);
    ASSERT_EQ(out.payload.index(), in.payload.index());
  }
}

TEST(Protocol, V1AndV2EncodingsDifferOnlyByTheTracePrefix) {
  // Byte-level contract: a v2 frame without a context is exactly the v1
  // frame plus one zero flags byte; with a context it adds 17 bytes.
  WireRequest w;
  w.id = 12;
  w.payload = serve::ChainSpec{16, 5};
  const auto v1 = encode_request(w, 1);
  const auto v2 = encode_request(w, 2);
  EXPECT_EQ(v2.size(), v1.size() + 1);
  w.trace.trace_id = 0xABCD;
  w.trace.parent_span_id = 0xEF01;
  w.trace.sampled = true;
  const auto v2t = encode_request(w, 2);
  EXPECT_EQ(v2t.size(), v1.size() + 1 + 16);
}

TEST(Protocol, UnknownTraceFlagBitsAreRejected) {
  WireRequest w;
  w.id = 9;
  w.payload = serve::ChainSpec{8, 1};
  auto frame = encode_request(w);  // v2, flags byte = 0
  frame[kHeaderSize + 4 + 4] |= 0x40;  // set a reserved flag bit
  FrameHeader h;
  ASSERT_EQ(parse_header(frame.data(), frame.size(), &h), HeaderParse::Ok);
  WireRequest out;
  std::string err;
  EXPECT_FALSE(decode_request_payload(h.type, h.version, h.id,
                                      frame.data() + kHeaderSize, h.len, &out,
                                      &err));
  EXPECT_NE(err.find("flag"), std::string::npos) << err;
}

TEST(Protocol, StatsResponseRoundTripsMetricsBreakersAndQueueDepth) {
  WireStats in;
  in.queue_depth = 17;
  in.metrics.counters = {{"net.accepted", 3}, {"serve.status.ok", 240}};
  in.metrics.gauges = {{"net.active_conns", 2.5}};
  obs::HistogramSnapshot h;
  h.count = 100;
  h.sum = 5000;
  h.min = 10;
  h.max = 300;
  h.buckets[4] = 60;   // [16,32)
  h.buckets[8] = 40;   // [256,512)
  in.metrics.histograms = {{"serve.total_ns", h}};
  in.breakers.push_back({"blocked-serial", 1, 0.25, 1500});

  const auto frame = encode_stats_response(5, in);
  FrameHeader fh;
  ASSERT_EQ(parse_header(frame.data(), frame.size(), &fh), HeaderParse::Ok);
  EXPECT_EQ(fh.type, MsgType::StatsResponse);
  WireStats out;
  std::string err;
  ASSERT_TRUE(decode_stats_response(frame.data() + kHeaderSize, fh.len, &out,
                                    &err))
      << err;
  EXPECT_EQ(out.queue_depth, 17);
  ASSERT_EQ(out.metrics.counters.size(), 2u);
  EXPECT_EQ(out.metrics.counters[1].first, "serve.status.ok");
  EXPECT_EQ(out.metrics.counters[1].second, 240);
  ASSERT_EQ(out.metrics.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(out.metrics.gauges[0].second, 2.5);
  ASSERT_EQ(out.metrics.histograms.size(), 1u);
  const obs::HistogramSnapshot& oh = out.metrics.histograms[0].second;
  EXPECT_EQ(oh.count, 100);
  EXPECT_EQ(oh.sum, 5000);
  EXPECT_EQ(oh.min, 10);
  EXPECT_EQ(oh.max, 300);
  EXPECT_EQ(oh.buckets[4], 60);
  EXPECT_EQ(oh.buckets[8], 40);
  // Quantile math is shared with the live histogram, so the decoded
  // snapshot computes the same interpolated values the server would.
  EXPECT_DOUBLE_EQ(oh.quantile(0.5), h.quantile(0.5));
  ASSERT_EQ(out.breakers.size(), 1u);
  EXPECT_EQ(out.breakers[0].name, "blocked-serial");
  EXPECT_EQ(out.breakers[0].state, 1);
  EXPECT_DOUBLE_EQ(out.breakers[0].failure_rate, 0.25);
  EXPECT_EQ(out.breakers[0].retry_after_ms, 1500);

  // Truncation at every byte fails cleanly, never reads out of bounds.
  for (std::size_t cut = 0; cut < fh.len; ++cut) {
    WireStats trunc;
    EXPECT_FALSE(decode_stats_response(frame.data() + kHeaderSize, cut,
                                       &trunc, &err))
        << "cut " << cut;
  }
}

// --- end-to-end over loopback ----------------------------------------------

struct ServerFixture {
  explicit ServerFixture(ServerOptions no = {},
                         serve::ServiceOptions so = small_service()) {
    no.port = 0;  // ephemeral
    server = std::make_unique<NpdpServer>(no, so);
    std::string err;
    EXPECT_TRUE(server->start(&err)) << err;
  }
  static serve::ServiceOptions small_service() {
    serve::ServiceOptions so;
    so.workers = 2;
    so.queue_capacity = 64;
    return so;
  }
  NpdpClient connect() {
    NpdpClient c;
    std::string err;
    EXPECT_TRUE(c.connect("127.0.0.1", server->port(), &err)) << err;
    return c;
  }
  std::unique_ptr<NpdpServer> server;
};

WireRequest chain_req(std::uint64_t id, index_t n, std::uint64_t seed,
                      std::uint32_t deadline_ms = 0) {
  WireRequest w;
  w.id = id;
  w.deadline_ms = deadline_ms;
  w.payload = serve::ChainSpec{n, seed};
  return w;
}

TEST(NetServer, AllRequestKindsRoundTripWithCorrectValues) {
  ServerFixture fx;
  NpdpClient cli = fx.connect();
  std::string err;
  Reply rep;

  // chain: value must equal the textbook reference on the same dims.
  {
    const serve::ChainSpec spec{24, 11};
    const auto dims = serve::chain_dims(spec);
    const auto ref = solve_matrix_chain_reference<float>(dims);
    WireRequest w = chain_req(1, spec.n, spec.seed);
    ASSERT_EQ(cli.call(w, &rep, 10000, &err), RecvStatus::Ok) << err;
    ASSERT_EQ(rep.kind, Reply::Kind::Result);
    EXPECT_EQ(rep.result.status, serve::Status::Ok);
    EXPECT_FLOAT_EQ(float(rep.result.value), float(ref.cost));
    EXPECT_FALSE(rep.result.backend.empty());
  }
  // bst: ditto against Knuth's reference.
  {
    const serve::BstSpec spec{20, 13};
    const auto data = serve::bst_data(spec);
    const float ref = solve_optimal_bst_reference<float>(data);
    WireRequest w;
    w.id = 2;
    w.payload = spec;
    ASSERT_EQ(cli.call(w, &rep, 10000, &err), RecvStatus::Ok) << err;
    EXPECT_EQ(rep.result.status, serve::Status::Ok);
    EXPECT_NEAR(float(rep.result.value), ref, 1e-3f);
  }
  // solve / fold / parse: success statuses end to end.
  {
    WireRequest w;
    w.id = 3;
    serve::SolveSpec s;
    s.n = 64;
    s.block_side = 16;
    w.payload = s;
    ASSERT_EQ(cli.call(w, &rep, 10000, &err), RecvStatus::Ok) << err;
    EXPECT_EQ(rep.result.status, serve::Status::Ok);
  }
  {
    WireRequest w;
    w.id = 4;
    serve::FoldSpec f;
    f.random_n = 40;
    w.payload = f;
    ASSERT_EQ(cli.call(w, &rep, 10000, &err), RecvStatus::Ok) << err;
    EXPECT_EQ(rep.result.status, serve::Status::Ok);
    EXPECT_FALSE(rep.result.detail.empty());  // dot-bracket structure
  }
  {
    WireRequest w;
    w.id = 5;
    serve::ParseSpec p;
    p.text = "(()())";
    w.payload = p;
    ASSERT_EQ(cli.call(w, &rep, 10000, &err), RecvStatus::Ok) << err;
    EXPECT_EQ(rep.result.status, serve::Status::Ok);
  }
  // Repeat of the chain request: served from cache, same value.
  {
    WireRequest w = chain_req(6, 24, 11);
    ASSERT_EQ(cli.call(w, &rep, 10000, &err), RecvStatus::Ok) << err;
    EXPECT_EQ(rep.result.status, serve::Status::OkCached);
  }
  // ping + stats on the same connection.
  ASSERT_EQ(cli.ping(99, 5000, &err), RecvStatus::Ok) << err;
  std::string json;
  ASSERT_EQ(cli.stats(&json, 5000, &err), RecvStatus::Ok) << err;
  JsonValue root;
  ASSERT_TRUE(json_parse(json, root, &err)) << err << "\n" << json;
  ASSERT_TRUE(root.is_object());
  EXPECT_TRUE(root.has("net"));
  EXPECT_TRUE(root.has("serve"));
  EXPECT_GE(root.at("net").at("frames_in").number, 6.0);
}

TEST(NetServer, VersionMismatchGetsTypedErrorThenDisconnect) {
  ServerFixture fx;
  NpdpClient cli = fx.connect();
  auto frame = encode_ping(5);
  frame[4] = 0x63;  // version: 99
  frame[5] = 0x00;
  std::string err;
  ASSERT_TRUE(cli.send_frame(frame, &err)) << err;
  Reply rep;
  ASSERT_EQ(cli.recv_reply(&rep, 5000, &err), RecvStatus::Ok) << err;
  ASSERT_EQ(rep.kind, Reply::Kind::ProtoError);
  EXPECT_EQ(rep.code, ProtoErrorCode::BadVersion);
  EXPECT_EQ(rep.id, 5u);
  // The server closes after flushing the error: next read is EOF.
  EXPECT_EQ(cli.recv_reply(&rep, 5000, &err), RecvStatus::Closed);
  // And the server is still accepting fresh connections.
  NpdpClient again = fx.connect();
  EXPECT_EQ(again.ping(1, 5000, &err), RecvStatus::Ok) << err;
}

TEST(NetServer, MalformedPayloadGetsTypedErrorAndConnectionSurvives) {
  ServerFixture fx;
  NpdpClient cli = fx.connect();
  // A Chain frame whose payload is cut mid-field (header length honest,
  // so the stream stays synchronized — only the payload is garbage).
  std::vector<std::uint8_t> frame;
  encode_header(frame, MsgType::Chain, 31, 6);
  for (int i = 0; i < 6; ++i) frame.push_back(0xAB);
  std::string err;
  ASSERT_TRUE(cli.send_frame(frame, &err)) << err;
  Reply rep;
  ASSERT_EQ(cli.recv_reply(&rep, 5000, &err), RecvStatus::Ok) << err;
  ASSERT_EQ(rep.kind, Reply::Kind::ProtoError);
  EXPECT_EQ(rep.code, ProtoErrorCode::BadPayload);
  EXPECT_EQ(rep.id, 31u);
  // Same connection keeps working.
  ASSERT_EQ(cli.call(chain_req(32, 8, 1), &rep, 10000, &err), RecvStatus::Ok)
      << err;
  EXPECT_EQ(rep.result.status, serve::Status::Ok);
  EXPECT_GE(fx.server->stats().frames_bad, 1u);
}

TEST(NetServer, UnknownSemiringTagGetsTypedErrorAndConnectionSurvives) {
  ServerFixture fx;
  NpdpClient cli = fx.connect();
  WireRequest in;
  in.id = 91;
  serve::SolveSpec s;
  s.n = 32;
  s.block_side = 8;
  s.semiring = SemiringId::MaxPlus;
  in.payload = s;
  auto frame = encode_request(in);
  frame.back() = 0x2A;  // clobber the trailing semiring tag
  std::string err;
  ASSERT_TRUE(cli.send_frame(frame, &err)) << err;
  Reply rep;
  ASSERT_EQ(cli.recv_reply(&rep, 5000, &err), RecvStatus::Ok) << err;
  ASSERT_EQ(rep.kind, Reply::Kind::ProtoError);
  EXPECT_EQ(rep.code, ProtoErrorCode::BadPayload);
  EXPECT_EQ(rep.id, 91u);
  // A correctly tagged solve on the same connection still works.
  WireRequest ok;
  ok.id = 92;
  ok.payload = s;
  ASSERT_EQ(cli.call(ok, &rep, 10000, &err), RecvStatus::Ok) << err;
  ASSERT_EQ(rep.kind, Reply::Kind::Result);
  EXPECT_EQ(rep.result.status, serve::Status::Ok);
}

TEST(NetServer, SolveRunsEverySemiringOverTheWire) {
  ServerFixture fx;
  NpdpClient cli = fx.connect();
  std::string err;
  Reply rep;
  for (std::uint8_t sr = 0; sr < kSemiringCount; ++sr) {
    WireRequest w;
    w.id = 300 + sr;
    serve::SolveSpec s;
    s.seed = 5;
    s.block_side = 8;
    s.semiring = static_cast<SemiringId>(sr);
    // Counting grows ~3 bits per span step; keep n small enough that the
    // float table stays finite.
    s.n = s.semiring == SemiringId::Counting ? 12 : 48;
    w.payload = s;
    ASSERT_EQ(cli.call(w, &rep, 10000, &err), RecvStatus::Ok)
        << semiring_name(s.semiring) << ": " << err;
    ASSERT_EQ(rep.kind, Reply::Kind::Result);
    EXPECT_EQ(rep.result.status, serve::Status::Ok)
        << semiring_name(s.semiring);
  }
}

TEST(NetServer, UnknownTypeGetsTypedErrorAndConnectionSurvives) {
  ServerFixture fx;
  NpdpClient cli = fx.connect();
  std::vector<std::uint8_t> frame;
  encode_header(frame, static_cast<MsgType>(77), 41, 0);
  std::string err;
  ASSERT_TRUE(cli.send_frame(frame, &err)) << err;
  Reply rep;
  ASSERT_EQ(cli.recv_reply(&rep, 5000, &err), RecvStatus::Ok) << err;
  ASSERT_EQ(rep.kind, Reply::Kind::ProtoError);
  EXPECT_EQ(rep.code, ProtoErrorCode::UnknownType);
  ASSERT_EQ(cli.ping(42, 5000, &err), RecvStatus::Ok) << err;
}

TEST(NetServer, BadMagicDisconnectsImmediately) {
  ServerFixture fx;
  NpdpClient cli = fx.connect();
  const std::vector<std::uint8_t> garbage(64, 0x5A);
  std::string err;
  ASSERT_TRUE(cli.send_frame(garbage, &err)) << err;
  Reply rep;
  EXPECT_EQ(cli.recv_reply(&rep, 5000, &err), RecvStatus::Closed);
  NpdpClient again = fx.connect();
  EXPECT_EQ(again.ping(1, 5000, &err), RecvStatus::Ok) << err;
}

TEST(NetServer, OversizedFrameIsRefusedWithTypedError) {
  ServerOptions no;
  no.max_frame = 4096;
  ServerFixture fx(no);
  NpdpClient cli = fx.connect();
  // Header claims 1 MiB payload; the server must refuse before buffering.
  std::vector<std::uint8_t> frame;
  encode_header(frame, MsgType::Chain, 51, 1u << 20);
  std::string err;
  ASSERT_TRUE(cli.send_frame(frame, &err)) << err;
  Reply rep;
  ASSERT_EQ(cli.recv_reply(&rep, 5000, &err), RecvStatus::Ok) << err;
  ASSERT_EQ(rep.kind, Reply::Kind::ProtoError);
  EXPECT_EQ(rep.code, ProtoErrorCode::FrameTooLarge);
  EXPECT_EQ(rep.id, 51u);
  EXPECT_EQ(cli.recv_reply(&rep, 5000, &err), RecvStatus::Closed);
  NpdpClient again = fx.connect();
  EXPECT_EQ(again.ping(1, 5000, &err), RecvStatus::Ok) << err;
}

TEST(NetServer, MidRequestDisconnectLeavesServerHealthy) {
  ServerFixture fx;
  {
    NpdpClient cli = fx.connect();
    std::string err;
    WireRequest w;
    w.id = 61;
    serve::SolveSpec s;
    s.n = 320;
    s.block_side = 32;
    w.payload = s;
    ASSERT_TRUE(cli.send_frame(encode_request(w), &err)) << err;
    // Wait for the request to be in flight, then kill the connection
    // deterministically with unsynchronizable garbage (bad magic closes
    // immediately) while the solve is still running.
    const auto submit_deadline =
        std::chrono::steady_clock::now() + milliseconds(5000);
    while (fx.server->stats().frames_in < 1 &&
           std::chrono::steady_clock::now() < submit_deadline)
      std::this_thread::sleep_for(milliseconds(1));
    ASSERT_GE(fx.server->stats().frames_in, 1u);
    ASSERT_TRUE(cli.send_frame(std::vector<std::uint8_t>(32, 0x5A), &err))
        << err;
  }
  // The orphaned response must be dropped (counted), never crash, and the
  // server must keep answering new clients.
  NpdpClient cli = fx.connect();
  std::string err;
  Reply rep;
  ASSERT_EQ(cli.call(chain_req(62, 8, 2), &rep, 10000, &err), RecvStatus::Ok)
      << err;
  EXPECT_EQ(rep.result.status, serve::Status::Ok);
  const auto deadline = std::chrono::steady_clock::now() + milliseconds(5000);
  while (fx.server->stats().dropped_responses < 1 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(milliseconds(10));
  EXPECT_GE(fx.server->stats().dropped_responses, 1u);
}

TEST(NetServer, HalfCloseStillDrainsBufferedRequests) {
  ServerFixture fx;
  NpdpClient cli = fx.connect();
  std::string err;
  // Pipeline a few requests and FIN the write side in the same breath:
  // the server must honour frames that arrived before the EOF and flush
  // every reply before closing.
  constexpr int kReqs = 4;
  for (int i = 0; i < kReqs; ++i)
    ASSERT_TRUE(cli.send_frame(
        encode_request(chain_req(200 + std::uint64_t(i), 10 + i, 5)), &err))
        << err;
  ASSERT_EQ(::shutdown(cli.fd(), SHUT_WR), 0);
  int results = 0;
  for (;;) {
    Reply rep;
    const RecvStatus rs = cli.recv_reply(&rep, 10000, &err);
    if (rs == RecvStatus::Closed) break;
    ASSERT_EQ(rs, RecvStatus::Ok) << err;
    ASSERT_EQ(rep.kind, Reply::Kind::Result);
    EXPECT_EQ(rep.result.status, serve::Status::Ok);
    ++results;
  }
  EXPECT_EQ(results, kReqs);
}

TEST(NetServer, DeadlineExceededReturnsExpiredOnTheWireNotDisconnect) {
  serve::ServiceOptions so;
  so.workers = 1;  // one worker, so the slow solve blocks the queue
  so.cache_capacity = 0;
  ServerFixture fx({}, so);
  NpdpClient cli = fx.connect();
  std::string err;
  // Occupy the only worker with a long solve...
  WireRequest slow;
  slow.id = 71;
  serve::SolveSpec s;
  s.n = 640;
  s.block_side = 32;
  s.kernel = KernelKind::Scalar;
  slow.payload = s;
  ASSERT_TRUE(cli.send_frame(encode_request(slow), &err)) << err;
  // ...then a request whose 1 ms deadline lapses while queued.
  ASSERT_TRUE(cli.send_frame(encode_request(chain_req(72, 64, 3, 1)), &err))
      << err;
  bool saw_expired = false, saw_slow = false;
  for (int i = 0; i < 2; ++i) {
    Reply rep;
    ASSERT_EQ(cli.recv_reply(&rep, 30000, &err), RecvStatus::Ok) << err;
    ASSERT_EQ(rep.kind, Reply::Kind::Result);
    if (rep.id == 72) {
      saw_expired = rep.result.status == serve::Status::Expired ||
                    rep.result.status == serve::Status::Cancelled;
      EXPECT_TRUE(saw_expired)
          << "status " << serve::status_name(rep.result.status);
    } else {
      saw_slow = true;
    }
  }
  EXPECT_TRUE(saw_expired);
  EXPECT_TRUE(saw_slow);
  // Still a healthy connection afterwards.
  EXPECT_EQ(cli.ping(73, 5000, &err), RecvStatus::Ok) << err;
}

TEST(NetServer, GracefulDrainAnswersEveryPipelinedRequest) {
  ServerFixture fx;
  NpdpClient cli = fx.connect();
  std::string err;
  constexpr int kPipelined = 32;
  for (int i = 0; i < kPipelined; ++i)
    ASSERT_TRUE(cli.send_frame(
        encode_request(chain_req(100 + std::uint64_t(i), 16 + i % 8, 9)),
        &err))
        << err;
  // Wait until every frame has been parsed and submitted (bytes still
  // sitting unread in the kernel at shutdown are legitimately droppable;
  // the drain contract covers admitted work), then drain.
  const auto parse_deadline =
      std::chrono::steady_clock::now() + milliseconds(5000);
  while (fx.server->stats().frames_in < std::uint64_t(kPipelined) &&
         std::chrono::steady_clock::now() < parse_deadline)
    std::this_thread::sleep_for(milliseconds(2));
  ASSERT_GE(fx.server->stats().frames_in, std::uint64_t(kPipelined));
  fx.server->stop();
  int results = 0;
  for (;;) {
    Reply rep;
    const RecvStatus rs = cli.recv_reply(&rep, 10000, &err);
    if (rs == RecvStatus::Closed) break;
    ASSERT_EQ(rs, RecvStatus::Ok) << err;
    ASSERT_EQ(rep.kind, Reply::Kind::Result);
    ++results;
  }
  // Every pipelined request got a terminal response before the close —
  // possibly Rejected (admission raced the stop), but never silence.
  EXPECT_EQ(results, kPipelined);
}

TEST(NetServer, IdleConnectionsAreSweptAfterTimeout) {
  ServerOptions no;
  no.idle_timeout_ms = 100;
  ServerFixture fx(no);
  NpdpClient cli = fx.connect();
  std::string err;
  Reply rep;
  const auto t0 = std::chrono::steady_clock::now();
  // A slow-loris connection that never completes a frame gets EOF'd.
  const RecvStatus rs = cli.recv_reply(&rep, 5000, &err);
  EXPECT_EQ(rs, RecvStatus::Closed);
  EXPECT_LT(std::chrono::steady_clock::now() - t0, milliseconds(4000));
  // An active connection is unaffected by the sweep cadence.
  NpdpClient busy = fx.connect();
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(busy.ping(std::uint64_t(i), 5000, &err), RecvStatus::Ok) << err;
    std::this_thread::sleep_for(milliseconds(40));
  }
}

TEST(NetServer, PartialFramesAcrossWritesReassemble) {
  ServerFixture fx;
  NpdpClient cli = fx.connect();
  std::string err;
  const auto frame = encode_request(chain_req(81, 12, 4));
  // Dribble the frame one byte at a time; the reactor must reassemble.
  for (std::size_t i = 0; i < frame.size(); ++i) {
    ASSERT_TRUE(cli.send_frame({frame[i]}, &err)) << err;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  Reply rep;
  ASSERT_EQ(cli.recv_reply(&rep, 10000, &err), RecvStatus::Ok) << err;
  EXPECT_EQ(rep.id, 81u);
  EXPECT_EQ(rep.result.status, serve::Status::Ok);
}

TEST(NetServer, LegacyV1ClientRoundTripsAgainstNewServer) {
  ServerFixture fx;
  NpdpClient cli = fx.connect();
  std::string err;
  // A v1 frame (no trace bytes) must be served exactly like before the
  // version bump; the response format is identical across versions.
  ASSERT_TRUE(
      cli.send_frame(encode_request(chain_req(91, 12, 6), /*version=*/1),
                     &err))
      << err;
  Reply rep;
  ASSERT_EQ(cli.recv_reply(&rep, 10000, &err), RecvStatus::Ok) << err;
  ASSERT_EQ(rep.kind, Reply::Kind::Result);
  EXPECT_EQ(rep.id, 91u);
  EXPECT_EQ(rep.result.status, serve::Status::Ok);
  // And v1/v2 frames interleave freely on one connection.
  ASSERT_EQ(cli.call(chain_req(92, 13, 6), &rep, 10000, &err), RecvStatus::Ok)
      << err;
  EXPECT_EQ(rep.result.status, serve::Status::Ok);
}

TEST(NetServer, StatsSnapshotFrameExposesLiveRegistry) {
  ServerFixture fx;
  NpdpClient cli = fx.connect();
  std::string err;
  Reply rep;
  ASSERT_EQ(cli.call(chain_req(95, 20, 8), &rep, 10000, &err), RecvStatus::Ok)
      << err;
  ASSERT_EQ(rep.result.status, serve::Status::Ok);

  WireStats ws;
  ASSERT_EQ(cli.stats_snapshot(&ws, 5000, &err), RecvStatus::Ok) << err;
  // The registry is process-global, so exact counts depend on test order;
  // presence and monotonicity are the contract.
  EXPECT_GE(ws.metrics.counter_or("serve.status.ok", 0), 1);
  EXPECT_GE(ws.metrics.counter_or("net.accepted", 0), 1);
  const obs::HistogramSnapshot* th =
      ws.metrics.find_histogram("serve.total_ns");
  ASSERT_NE(th, nullptr);
  EXPECT_GE(th->count, 1);
  EXPECT_GT(th->quantile(0.5), 0.0);
  EXPECT_GE(ws.queue_depth, 0);
  // Counter names arrive sorted (snapshot ordering is stable).
  for (std::size_t i = 1; i < ws.metrics.counters.size(); ++i)
    EXPECT_LT(ws.metrics.counters[i - 1].first, ws.metrics.counters[i].first);
}

TEST(NetServer, SampledTraceContextYieldsCorrelatedServerSpans) {
  obs::Tracer& tr = obs::Tracer::instance();
  tr.start(1 << 12);
  std::uint64_t trace_id;
  {
    ServerFixture fx;
    NpdpClient cli = fx.connect();
    std::string err;
    WireRequest w = chain_req(97, 18, 9);
    w.trace = obs::make_root_context(/*sampled=*/true);
    trace_id = w.trace.trace_id;
    ASSERT_NE(trace_id, 0u);
    Reply rep;
    ASSERT_EQ(cli.call(w, &rep, 10000, &err), RecvStatus::Ok) << err;
    EXPECT_EQ(rep.result.status, serve::Status::Ok);

    // An unsampled context must NOT record spans.
    WireRequest quiet = chain_req(98, 19, 9);
    quiet.trace = obs::make_root_context(/*sampled=*/false);
    ASSERT_EQ(cli.call(quiet, &rep, 10000, &err), RecvStatus::Ok) << err;
  }  // server drains before we read the rings
  tr.stop();
  bool saw_decode = false, saw_queue = false, saw_solve = false,
       saw_respond = false;
  for (const auto& t : tr.snapshot()) {
    for (const auto& ev : t.events) {
      if (std::strcmp(ev.cat, "req") != 0) continue;
      EXPECT_NE(ev.a0, std::int64_t(0)) << "req event without trace id";
      if (ev.a0 != std::int64_t(trace_id)) continue;
      if (std::strcmp(ev.name, "decode") == 0) saw_decode = true;
      if (std::strcmp(ev.name, "queue") == 0) saw_queue = true;
      if (std::strcmp(ev.name, "solve") == 0) saw_solve = true;
      if (std::strcmp(ev.name, "respond") == 0) {
        saw_respond = true;
        EXPECT_EQ(ev.a1, std::int64_t(wire_status(serve::Status::Ok)));
      }
    }
  }
  EXPECT_TRUE(saw_decode);
  EXPECT_TRUE(saw_queue);
  EXPECT_TRUE(saw_solve);
  EXPECT_TRUE(saw_respond);
}

TEST(NetLoadgen, ClosedLoopLoopbackRunsClean) {
  ServerFixture fx;
  LoadGenOptions lo;
  lo.port = fx.server->port();
  lo.connections = 2;
  lo.duration_ms = 300;
  lo.mix = "mix";
  lo.size = 16;
  LoadGenResult r;
  std::string err;
  ASSERT_TRUE(run_loadgen(lo, &r, &err)) << err;
  EXPECT_GT(r.sent, 0u);
  EXPECT_TRUE(r.clean()) << r.proto_errors << " proto / "
                         << r.transport_errors << " transport errors, "
                         << r.replies << "/" << r.sent << " replies";
  EXPECT_EQ(r.ok + r.cached + r.degraded, r.replies);
  EXPECT_EQ(r.latencies_ms.size(), r.replies);
  EXPECT_GT(latency_percentile(r.latencies_ms, 0.99), 0.0);
}

TEST(NetLoadgen, TraceOriginationRecordsOneClientSpanPerSampledReply) {
  obs::Tracer& tr = obs::Tracer::instance();
  tr.start(1 << 14);
  LoadGenResult r;
  {
    ServerFixture fx;
    LoadGenOptions lo;
    lo.port = fx.server->port();
    lo.connections = 2;
    lo.duration_ms = 5000;
    lo.max_requests = 20;
    lo.mix = "chain";
    lo.size = 12;
    lo.trace = true;
    lo.trace_sample = 1.0;
    std::string err;
    ASSERT_TRUE(run_loadgen(lo, &r, &err)) << err;
    ASSERT_TRUE(r.clean());
  }
  tr.stop();
  long client_spans = 0;
  std::set<std::int64_t> ids;
  for (const auto& t : tr.snapshot())
    for (const auto& ev : t.events)
      if (std::strcmp(ev.cat, "req") == 0 &&
          std::strcmp(ev.name, "client") == 0) {
        ++client_spans;
        EXPECT_GE(ev.dur_ns, 0);
        ids.insert(ev.a0);
      }
  EXPECT_EQ(client_spans, long(r.replies));
  // Every request got its own trace id.
  EXPECT_EQ(ids.size(), std::size_t(client_spans));
}

TEST(NetLoadgen, OpenLoopRespectsRequestCap) {
  ServerFixture fx;
  LoadGenOptions lo;
  lo.port = fx.server->port();
  lo.connections = 2;
  lo.rate = 2000;
  lo.duration_ms = 2000;
  lo.max_requests = 50;
  lo.mix = "bst";
  lo.size = 12;
  LoadGenResult r;
  std::string err;
  ASSERT_TRUE(run_loadgen(lo, &r, &err)) << err;
  EXPECT_EQ(r.sent, 50u);
  EXPECT_TRUE(r.clean());
}

// --- client reconnect / connect-timeout ------------------------------------

TEST(NetClient, ConnectTimeoutBoundsTheDial) {
  // A local port that was just released: the dial must fail promptly
  // (refused) with an error string, well inside the timeout.
  std::uint16_t dead_port;
  {
    ServerFixture fx;
    dead_port = fx.server->port();
  }
  NpdpClient cli;
  std::string err;
  auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(cli.connect("127.0.0.1", dead_port, &err, 2000));
  EXPECT_LT(std::chrono::steady_clock::now() - t0, milliseconds(3000));
  EXPECT_FALSE(err.empty());
  // A dial that cannot complete promptly (blackhole address in most
  // environments) must come back within the bound either way, never hang
  // for the kernel default of minutes.
  t0 = std::chrono::steady_clock::now();
  NpdpClient far;
  far.connect("10.255.255.1", 9, &err, 200);
  EXPECT_LT(std::chrono::steady_clock::now() - t0, milliseconds(3000));
}

TEST(NetClient, SendWithoutAutoReconnectReportsReset) {
  ServerFixture fx;
  NpdpClient cli = fx.connect();
  std::string err;
  cli.close();
  EXPECT_EQ(cli.send_frame2(encode_ping(1), &err), NpdpClient::SendStatus::Reset);
  EXPECT_NE(err.find("not connected"), std::string::npos) << err;
}

TEST(NetClient, AutoReconnectRedialsTheRememberedEndpoint) {
  ServerFixture fx;
  NpdpClient cli = fx.connect();
  cli.set_auto_reconnect(true);
  cli.set_connect_timeout(2000);
  std::string err;
  Reply rep;
  ASSERT_EQ(cli.call(chain_req(1, 10, 2), &rep, 10000, &err), RecvStatus::Ok)
      << err;
  // Drop the connection locally; the next send must re-dial and succeed.
  cli.close();
  ASSERT_FALSE(cli.connected());
  ASSERT_EQ(cli.send_frame2(encode_request(chain_req(2, 11, 2)), &err),
            NpdpClient::SendStatus::Ok)
      << err;
  EXPECT_TRUE(cli.connected());
  ASSERT_EQ(cli.recv_reply(&rep, 10000, &err), RecvStatus::Ok) << err;
  EXPECT_EQ(rep.id, 2u);
  EXPECT_EQ(rep.result.status, serve::Status::Ok);
  // Explicit reconnect() works too.
  cli.close();
  ASSERT_TRUE(cli.reconnect(&err)) << err;
  EXPECT_EQ(cli.ping(3, 5000, &err), RecvStatus::Ok) << err;
}

// --- peer frames (src/dist wire tier) --------------------------------------

TEST(PeerFrames, AllFourKindsRoundTrip) {
  dist::PeerHello in;
  in.rank = 2;
  in.nranks = 5;
  in.config_hash = 0xDEADBEEFCAFEF00Dull;
  in.n = 4096;
  in.block_side = 64;
  in.semiring = 3;
  in.elem_bytes = 8;
  const auto hf = dist::encode_peer_hello(11, in);
  FrameHeader h;
  ASSERT_EQ(parse_header(hf.data(), hf.size(), &h), HeaderParse::Ok);
  EXPECT_EQ(h.type, MsgType::PeerHello);
  EXPECT_EQ(h.version, kVersion);
  EXPECT_TRUE(is_peer_type(h.type));
  EXPECT_FALSE(is_request_type(h.type));
  dist::PeerHello out;
  std::string err;
  ASSERT_TRUE(decode_peer_hello(h.version, hf.data() + kHeaderSize, h.len,
                                &out, &err))
      << err;
  EXPECT_EQ(out.rank, in.rank);
  EXPECT_EQ(out.nranks, in.nranks);
  EXPECT_EQ(out.config_hash, in.config_hash);
  EXPECT_EQ(out.n, in.n);
  EXPECT_EQ(out.block_side, in.block_side);
  EXPECT_EQ(out.semiring, in.semiring);
  EXPECT_EQ(out.elem_bytes, in.elem_bytes);

  dist::BlockAnnounce an;
  an.bi = 3;
  an.bj = 7;
  an.bytes = 16384;
  an.checksum = 0x1234567890ABCDEFull;
  const auto af = dist::encode_block_announce(12, an);
  ASSERT_EQ(parse_header(af.data(), af.size(), &h), HeaderParse::Ok);
  EXPECT_EQ(h.type, MsgType::BlockAnnounce);
  dist::BlockAnnounce aout;
  ASSERT_TRUE(decode_block_announce(h.version, af.data() + kHeaderSize, h.len,
                                    &aout, &err))
      << err;
  EXPECT_EQ(aout.bi, an.bi);
  EXPECT_EQ(aout.bj, an.bj);
  EXPECT_EQ(aout.bytes, an.bytes);
  EXPECT_EQ(aout.checksum, an.checksum);

  SplitMix64 rng(77);
  std::vector<std::uint8_t> block(256);
  for (auto& b : block) b = static_cast<std::uint8_t>(rng.next_below(256));
  const auto df =
      dist::encode_block_data(13, 1, 4, 0xFEEDull, block.data(), block.size());
  ASSERT_EQ(parse_header(df.data(), df.size(), &h), HeaderParse::Ok);
  EXPECT_EQ(h.type, MsgType::BlockData);
  EXPECT_EQ(h.len, dist::kBlockDataPrefix + block.size());
  dist::BlockDataView v;
  ASSERT_TRUE(decode_block_data(h.version, df.data() + kHeaderSize, h.len,
                                block.size(), &v, &err))
      << err;
  EXPECT_EQ(v.bi, 1u);
  EXPECT_EQ(v.bj, 4u);
  EXPECT_EQ(v.checksum, 0xFEEDull);
  ASSERT_EQ(v.len, block.size());
  EXPECT_EQ(std::memcmp(v.data, block.data(), block.size()), 0);

  dist::PeerDone d;
  d.rank = 4;
  d.blocks_computed = 21;
  d.bytes_sent = 1u << 24;
  const auto pf = dist::encode_peer_done(14, d);
  ASSERT_EQ(parse_header(pf.data(), pf.size(), &h), HeaderParse::Ok);
  EXPECT_EQ(h.type, MsgType::PeerDone);
  dist::PeerDone dout;
  ASSERT_TRUE(decode_peer_done(h.version, pf.data() + kHeaderSize, h.len,
                               &dout, &err))
      << err;
  EXPECT_EQ(dout.rank, d.rank);
  EXPECT_EQ(dout.blocks_computed, d.blocks_computed);
  EXPECT_EQ(dout.bytes_sent, d.bytes_sent);
}

TEST(PeerFrames, TruncationAtEveryByteBoundaryFailsCleanly) {
  dist::PeerHello hello;
  hello.rank = 0;
  hello.nranks = 3;
  hello.n = 256;
  hello.block_side = 64;
  hello.elem_bytes = 4;
  dist::BlockAnnounce an;
  an.bj = 2;
  dist::PeerDone done;
  done.rank = 1;
  const std::vector<std::uint8_t> payload(64, 0xAB);

  struct Case {
    const char* name;
    std::vector<std::uint8_t> frame;
  };
  const Case cases[] = {
      {"hello", dist::encode_peer_hello(1, hello)},
      {"announce", dist::encode_block_announce(2, an)},
      {"data", dist::encode_block_data(3, 0, 1, 9, payload.data(),
                                       payload.size())},
      {"done", dist::encode_peer_done(4, done)},
  };
  for (const Case& c : cases) {
    FrameHeader h;
    ASSERT_EQ(parse_header(c.frame.data(), c.frame.size(), &h),
              HeaderParse::Ok);
    for (std::size_t cut = 0; cut < kHeaderSize; ++cut)
      EXPECT_EQ(parse_header(c.frame.data(), cut, &h), HeaderParse::NeedMore)
          << c.name << " header cut " << cut;
    for (std::size_t cut = 0; cut < h.len; ++cut) {
      std::string err;
      bool ok = false;
      const std::uint8_t* p = c.frame.data() + kHeaderSize;
      if (h.type == MsgType::PeerHello) {
        dist::PeerHello out;
        ok = decode_peer_hello(h.version, p, cut, &out, &err);
      } else if (h.type == MsgType::BlockAnnounce) {
        dist::BlockAnnounce out;
        ok = decode_block_announce(h.version, p, cut, &out, &err);
      } else if (h.type == MsgType::BlockData) {
        dist::BlockDataView out;
        ok = decode_block_data(h.version, p, cut, payload.size(), &out, &err);
      } else {
        dist::PeerDone out;
        ok = decode_peer_done(h.version, p, cut, &out, &err);
      }
      EXPECT_FALSE(ok) << c.name << " cut " << cut << "/" << h.len;
    }
  }
}

TEST(PeerFrames, BlockDataOfUnexpectedSizeIsRejected) {
  // The receiver knows its block_bytes from the hello; a BlockData whose
  // payload is any other size — oversize or short — must fail decode
  // before a byte reaches the matrix slab.
  const std::vector<std::uint8_t> payload(128, 0x3C);
  const auto frame =
      dist::encode_block_data(5, 0, 0, 1, payload.data(), payload.size());
  FrameHeader h;
  ASSERT_EQ(parse_header(frame.data(), frame.size(), &h), HeaderParse::Ok);
  dist::BlockDataView v;
  std::string err;
  EXPECT_FALSE(decode_block_data(h.version, frame.data() + kHeaderSize, h.len,
                                 /*expected_len=*/64, &v, &err));
  EXPECT_NE(err.find("expected 64"), std::string::npos) << err;
  EXPECT_FALSE(decode_block_data(h.version, frame.data() + kHeaderSize, h.len,
                                 /*expected_len=*/256, &v, &err));
}

TEST(PeerFrames, TrailingBytesFailDecode) {
  dist::PeerDone d;
  auto frame = dist::encode_peer_done(6, d);
  frame.push_back(0);
  FrameHeader h;
  ASSERT_EQ(parse_header(frame.data(), frame.size(), &h), HeaderParse::Ok);
  dist::PeerDone out;
  std::string err;
  EXPECT_FALSE(decode_peer_done(h.version, frame.data() + kHeaderSize,
                                frame.size() - kHeaderSize, &out, &err));
  EXPECT_NE(err.find("trailing"), std::string::npos) << err;
}

TEST(PeerFrames, V1HeadersAreRejected) {
  // v1 predates the peer tier; nothing at that version can legitimately
  // have produced a peer frame, so the decoders refuse it outright.
  dist::PeerHello hello;
  hello.nranks = 2;
  hello.n = 64;
  hello.block_side = 32;
  hello.elem_bytes = 4;
  const auto hf = dist::encode_peer_hello(7, hello);
  FrameHeader h;
  ASSERT_EQ(parse_header(hf.data(), hf.size(), &h), HeaderParse::Ok);
  dist::PeerHello out;
  std::string err;
  EXPECT_FALSE(decode_peer_hello(/*version=*/1, hf.data() + kHeaderSize,
                                 h.len, &out, &err));
  EXPECT_NE(err.find("protocol v2"), std::string::npos) << err;
  dist::BlockAnnounce aout;
  EXPECT_FALSE(decode_block_announce(1, hf.data() + kHeaderSize, h.len, &aout,
                                     &err));
  dist::BlockDataView v;
  EXPECT_FALSE(
      decode_block_data(1, hf.data() + kHeaderSize, h.len, 64, &v, &err));
  dist::PeerDone dout;
  EXPECT_FALSE(
      decode_peer_done(1, hf.data() + kHeaderSize, h.len, &dout, &err));
}

TEST(PeerFrames, RequestServerAnswersPeerFramesWithUnknownType) {
  // Peer frames are not request types: a client that aims one at an
  // ordinary NpdpServer gets the standard typed UnknownType error and the
  // connection survives — the request tier never interprets peer frames.
  ServerFixture fx;
  NpdpClient cli = fx.connect();
  dist::PeerHello hello;
  hello.nranks = 2;
  hello.n = 64;
  hello.block_side = 32;
  hello.elem_bytes = 4;
  std::string err;
  ASSERT_TRUE(cli.send_frame(dist::encode_peer_hello(91, hello), &err)) << err;
  Reply rep;
  ASSERT_EQ(cli.recv_reply(&rep, 5000, &err), RecvStatus::Ok) << err;
  ASSERT_EQ(rep.kind, Reply::Kind::ProtoError);
  EXPECT_EQ(rep.code, ProtoErrorCode::UnknownType);
  EXPECT_EQ(rep.id, 91u);
  ASSERT_EQ(cli.ping(92, 5000, &err), RecvStatus::Ok) << err;
}

TEST(NetLoadgen, PercentileInterpolates) {
  EXPECT_EQ(latency_percentile({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(latency_percentile({5.0}, 0.99), 5.0);
  EXPECT_DOUBLE_EQ(latency_percentile({1.0, 3.0}, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(latency_percentile({3.0, 1.0, 2.0}, 1.0), 3.0);
  EXPECT_DOUBLE_EQ(latency_percentile({1.0, 2.0, 3.0, 4.0}, 0.0), 1.0);
}

}  // namespace
}  // namespace cellnpdp::net
