// Cooperative cancellation and the solver-backend registry.
//
// The contract under test (docs/architecture.md): every backend resolves by
// name and produces bit-identical results to the concrete entry point it
// wraps; a cancelled solve returns SolveStatus::Cancelled with a partial
// but never torn table (the same arena re-solves to the exact answer); the
// serve layer turns request deadlines into mid-solve aborts that free the
// worker for the next request.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "apps/matrix_chain/matrix_chain.hpp"
#include "apps/optimal_bst/optimal_bst.hpp"
#include "apps/polygon/triangulation.hpp"
#include "apps/zuker/fold.hpp"
#include "backend/solver_backend.hpp"
#include "baselines/recursive_npdp.hpp"
#include "baselines/tan_npdp.hpp"
#include "common/cancel.hpp"
#include "common/rng.hpp"
#include "core/reference.hpp"
#include "core/solve.hpp"
#include "layout/convert.hpp"
#include "obs/metrics.hpp"
#include "serve/service.hpp"
#include "taskgraph/dependence_graph.hpp"
#include "taskgraph/executor.hpp"

namespace cellnpdp {
namespace {

NpdpInstance<float> pure_instance(index_t n, std::uint64_t seed = 11) {
  NpdpInstance<float> inst;
  inst.n = n;
  inst.init = [seed](index_t i, index_t j) {
    return random_init_value<float>(seed, i, j);
  };
  return inst;
}

/// An instance whose relaxations sleep, so a test can cancel mid-solve
/// deterministically without huge tables. The kterm forces scalar tiles
/// and is called O(n^3/6) times; ~1us each keeps the full solve in the
/// tens of milliseconds.
NpdpInstance<float> slow_instance(index_t n) {
  NpdpInstance<float> inst = pure_instance(n);
  inst.kterm = [](index_t, index_t, index_t) {
    std::this_thread::sleep_for(std::chrono::microseconds(1));
    return 0.0f;
  };
  return inst;
}

// --- CancelToken ---------------------------------------------------------

TEST(CancelToken, InertTokenNeverCancels) {
  CancelToken t;
  EXPECT_FALSE(t.armed_token());
  EXPECT_FALSE(t.cancelled());
  EXPECT_FALSE(t.poll());
  EXPECT_FALSE(t.poll_deadline_now());
  t.request_cancel();  // no-op
  EXPECT_FALSE(t.cancelled());
}

TEST(CancelToken, FirstReasonWins) {
  CancelToken t = CancelToken::armed();
  EXPECT_FALSE(t.cancelled());
  t.request_cancel(CancelReason::Shed);
  t.request_cancel(CancelReason::Shutdown);
  EXPECT_TRUE(t.cancelled());
  EXPECT_EQ(t.reason(), CancelReason::Shed);
}

TEST(CancelToken, CopiesShareState) {
  CancelToken a = CancelToken::armed();
  CancelToken b = a;
  b.request_cancel();
  EXPECT_TRUE(a.cancelled());
}

TEST(CancelToken, DeadlineTripsPollDeadlineNow) {
  CancelToken t = CancelToken::after(std::chrono::milliseconds(-1));
  EXPECT_TRUE(t.poll_deadline_now());
  EXPECT_EQ(t.reason(), CancelReason::Deadline);
}

// --- backend registry ----------------------------------------------------

TEST(BackendRegistry, ResolvesEveryBuiltin) {
  auto& reg = backend::BackendRegistry::instance();
  for (const char* name : {"reference", "blocked-serial", "blocked-parallel",
                           "tan", "recursive", "cellsim"}) {
    const backend::SolverBackend* b = reg.find(name);
    ASSERT_NE(b, nullptr) << name;
    EXPECT_STREQ(b->name(), name);
  }
  EXPECT_TRUE(reg.find("blocked-parallel")->caps().parallel);
  EXPECT_TRUE(reg.find("cellsim")->caps().timing_model);
  EXPECT_TRUE(reg.find("blocked-serial")->caps().arena);
  EXPECT_FALSE(reg.find("reference")->caps().arena);
}

TEST(BackendRegistry, UnknownNameThrowsWithKnownList) {
  try {
    backend::require_backend("no-such-backend");
    FAIL() << "expected UnknownBackendError";
  } catch (const backend::UnknownBackendError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("no-such-backend"), std::string::npos);
    EXPECT_NE(msg.find("blocked-serial"), std::string::npos);
  }
}

TEST(BackendRegistry, DuplicateNameRejected) {
  struct Dup final : backend::SolverBackend {
    const char* name() const override { return "reference"; }
    backend::Capabilities caps() const override { return {}; }
    backend::BackendResult solve(const NpdpInstance<float>&,
                                 const ExecutionContext&) const override {
      return {};
    }
  };
  EXPECT_THROW(
      backend::BackendRegistry::instance().add(std::make_unique<Dup>()),
      std::invalid_argument);
}

TEST(BackendRegistry, AllBackendsBitIdenticalOnPureInstances) {
  const auto inst = pure_instance(150, 23);
  const TriangularMatrix<float> expect = solve_reference(inst);
  const float expect_top = expect.at(0, inst.n - 1);
  for (const backend::SolverBackend* b :
       backend::BackendRegistry::instance().list()) {
    ExecutionContext ctx;
    ctx.tuning.block_side = 32;
    ctx.tuning.threads = b->caps().parallel ? 3 : 1;
    const backend::BackendResult r = b->solve(inst, ctx);
    ASSERT_EQ(r.status, SolveStatus::Ok) << b->name();
    EXPECT_EQ(float(r.value), expect_top) << b->name();
    if (r.tri != nullptr) {
      EXPECT_EQ(max_abs_diff(expect, *r.tri), 0.0) << b->name();
    }
    if (r.blocked != nullptr) {
      EXPECT_EQ(max_abs_diff(expect, *r.blocked), 0.0) << b->name();
    }
  }
}

TEST(BackendRegistry, BlockedBackendsSolveIntoProvidedArena) {
  const auto inst = pure_instance(100, 5);
  const TriangularMatrix<float> expect = solve_reference(inst);
  for (const char* name : {"blocked-serial", "blocked-parallel"}) {
    BlockedTriangularMatrix<float> arena(inst.n, 32);
    ExecutionContext ctx;
    ctx.tuning.block_side = 32;
    ctx.arena = &arena;
    const auto r = backend::require_backend(name).solve(inst, ctx);
    ASSERT_EQ(r.status, SolveStatus::Ok);
    EXPECT_EQ(r.blocked, nullptr);  // the arena holds the table
    EXPECT_EQ(r.tri, nullptr);
    EXPECT_EQ(max_abs_diff(expect, arena), 0.0) << name;
    EXPECT_EQ(float(r.value), expect.at(0, inst.n - 1)) << name;
  }
}

TEST(BackendRegistry, PureOnlyBaselinesRejectWeightedInstances) {
  auto inst = pure_instance(40);
  inst.weight = [](index_t, index_t) { return 0.5f; };
  ExecutionContext ctx;
  EXPECT_THROW(backend::require_backend("tan").solve(inst, ctx),
               std::invalid_argument);
  EXPECT_THROW(backend::require_backend("recursive").solve(inst, ctx),
               std::invalid_argument);
}

TEST(BackendRegistry, CellsimReportsSimulatedSeconds) {
  const auto inst = pure_instance(192);
  ExecutionContext ctx;
  ctx.tuning.block_side = 64;
  const auto r = backend::require_backend("cellsim").solve(inst, ctx);
  ASSERT_EQ(r.status, SolveStatus::Ok);
  EXPECT_GT(r.sim_seconds, 0.0);
}

// --- executor cancellation ----------------------------------------------

TEST(ExecutorCancel, PreCancelledRunExecutesNothing) {
  BlockDependenceGraph graph(6);
  CancelToken cancel = CancelToken::armed();
  cancel.request_cancel();
  std::atomic<int> ran{0};
  const bool completed = TaskQueueExecutor::run(
      graph, 3, [&](index_t, index_t) { ++ran; }, nullptr, cancel);
  EXPECT_FALSE(completed);
  EXPECT_EQ(ran.load(), 0);
  const auto order = TaskQueueExecutor::run_serial(
      graph, [&](index_t, index_t) { ++ran; }, nullptr, cancel);
  EXPECT_TRUE(order.empty());
  EXPECT_EQ(ran.load(), 0);
}

TEST(ExecutorCancel, TripMidRunStopsReleasingTasks) {
  BlockDependenceGraph graph(8);  // 36 tasks
  CancelToken cancel = CancelToken::armed();
  std::atomic<int> ran{0};
  const std::int64_t abandoned_before =
      obs::metrics().counter("sched.cancelled_tasks").value();
  ExecutorStats es;
  const bool completed = TaskQueueExecutor::run(
      graph, 2,
      [&](index_t, index_t) {
        if (++ran >= 3) cancel.request_cancel();
      },
      &es, cancel);
  EXPECT_FALSE(completed);
  EXPECT_LT(ran.load(), 36);
  EXPECT_EQ(es.tasks, index_t(ran.load()));
  EXPECT_GT(obs::metrics().counter("sched.cancelled_tasks").value(),
            abandoned_before);
}

// --- solver cancellation / arena reuse ----------------------------------

TEST(SolveCancel, MidSolveCancelThenArenaReuseIsBitIdentical) {
  const auto slow = slow_instance(72);
  const auto inst = pure_instance(72);  // same shape, fast
  BlockedTriangularMatrix<float> mat(slow.n, 16);

  ExecutionContext ctx;
  ctx.tuning.block_side = 16;
  ctx.tuning.threads = 4;
  ctx.cancel = CancelToken::armed();
  std::thread cancel_thread([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(8));
    ctx.cancel.request_cancel();
  });
  const SolveStatus st = solve_blocked_parallel_into(mat, slow, ctx);
  cancel_thread.join();
  ASSERT_EQ(st, SolveStatus::Cancelled);

  // The arena of the abandoned solve must be reusable in place: reset and
  // re-solve, and the table is bit-identical to the reference answer — no
  // block was left half-relaxed in a way reset() would not clear.
  mat.reset();
  ExecutionContext fresh;
  fresh.tuning.block_side = 16;
  fresh.tuning.threads = 4;
  ASSERT_EQ(solve_blocked_parallel_into(mat, inst, fresh), SolveStatus::Ok);
  EXPECT_EQ(max_abs_diff(solve_reference(inst), mat), 0.0);
}

TEST(SolveCancel, SerialSolvePreCancelledLeavesSeededTable) {
  const auto inst = pure_instance(64);
  BlockedTriangularMatrix<float> mat(inst.n, 16);
  ExecutionContext ctx;
  ctx.tuning.block_side = 16;
  ctx.cancel = CancelToken::armed();
  ctx.cancel.request_cancel(CancelReason::Shutdown);
  SolveStats ss;
  ctx.stats = &ss;
  EXPECT_EQ(solve_blocked_serial_into(mat, inst, ctx),
            SolveStatus::Cancelled);
  EXPECT_EQ(ss.tasks, 0);
}

TEST(SolveCancel, BaselinesObserveExplicitCancel) {
  const auto inst = pure_instance(64);
  CancelToken tripped = CancelToken::armed();
  tripped.request_cancel();

  TriangularMatrix<float> tan_table(inst.n);
  tan_table.fill(inst.init);
  EXPECT_FALSE(solve_tan_npdp(tan_table, TanOptions{}, tripped));

  bool completed = true;
  solve_recursive(inst, {}, tripped, &completed);
  EXPECT_FALSE(completed);

  completed = true;
  solve_reference(inst, tripped, &completed);
  EXPECT_FALSE(completed);

  completed = false;
  const auto full = solve_reference(inst, CancelToken::armed(), &completed);
  EXPECT_TRUE(completed);
  EXPECT_EQ(max_abs_diff(full, solve_reference(inst)), 0.0);
}

// --- application-level cancellation --------------------------------------

TEST(AppsCancel, MatrixChainContextFormMatchesLegacyAndCancels) {
  std::vector<float> p;
  for (int i = 0; i <= 40; ++i) p.push_back(float(2 + (i * 7) % 9));

  ExecutionContext tripped;
  tripped.tuning.block_side = 16;
  tripped.cancel = CancelToken::armed();
  tripped.cancel.request_cancel();
  MatrixChainResult<float> out;
  out.cost = -1.0f;
  ASSERT_EQ(solve_matrix_chain(p, tripped, &out), SolveStatus::Cancelled);
  EXPECT_EQ(out.cost, -1.0f);  // untouched on cancel

  ExecutionContext ctx;
  ctx.tuning.block_side = 16;
  ASSERT_EQ(solve_matrix_chain(p, ctx, &out), SolveStatus::Ok);
  const auto ref = solve_matrix_chain_reference(p);
  EXPECT_EQ(out.cost, ref.cost);
  EXPECT_EQ(out.parenthesization, ref.parenthesization);
}

TEST(AppsCancel, OptimalBstContextFormMatchesLegacyAndCancels) {
  std::vector<double> prob{0, 0.15, 0.10, 0.05, 0.10, 0.20};
  std::vector<double> gap{0.05, 0.10, 0.05, 0.05, 0.05, 0.10};
  const auto d = make_bst_data(prob, gap);

  double cost = -1.0;
  ExecutionContext tripped;
  tripped.cancel = CancelToken::armed();
  tripped.cancel.request_cancel();
  ASSERT_EQ(solve_optimal_bst(d, tripped, &cost), SolveStatus::Cancelled);
  EXPECT_EQ(cost, -1.0);

  ExecutionContext ctx;
  ASSERT_EQ(solve_optimal_bst(d, ctx, &cost), SolveStatus::Ok);
  EXPECT_NEAR(cost, solve_optimal_bst_reference(d), 1e-9);
}

TEST(AppsCancel, TriangulateContextFormMatchesLegacyAndCancels) {
  const auto pts = polygon::random_convex_polygon(48, 3);

  polygon::TriangulationResult out;
  ExecutionContext tripped;
  tripped.tuning.block_side = 16;
  tripped.cancel = CancelToken::armed();
  tripped.cancel.request_cancel();
  ASSERT_EQ(polygon::triangulate(pts, tripped, &out),
            SolveStatus::Cancelled);
  EXPECT_TRUE(out.triangles.empty());

  ExecutionContext ctx;
  ctx.tuning.block_side = 16;
  ASSERT_EQ(polygon::triangulate(pts, ctx, &out), SolveStatus::Ok);
  EXPECT_NEAR(out.cost, polygon::triangulate_reference(pts), 1e-9);
  EXPECT_EQ(out.triangles.size(), pts.size() - 2);
}

TEST(AppsCancel, ZukerFoldObservesToken) {
  const auto seq = zuker::random_sequence(160, 7);

  zuker::FoldOptions cancelled_opts;
  cancelled_opts.cancel = CancelToken::armed();
  cancelled_opts.cancel.request_cancel();
  zuker::ZukerFolder aborted(zuker::EnergyModel{}, cancelled_opts);
  EXPECT_TRUE(aborted.fold(seq).cancelled);

  zuker::FoldOptions opts;
  opts.cancel = CancelToken::armed();  // armed but never tripped
  zuker::ZukerFolder folder(zuker::EnergyModel{}, opts);
  const auto got = folder.fold(seq);
  EXPECT_FALSE(got.cancelled);
  const auto expect = zuker::ZukerFolder().fold(seq);
  EXPECT_EQ(got.mfe, expect.mfe);
  EXPECT_EQ(got.structure, expect.structure);
}

// --- serve-layer cancellation -------------------------------------------

serve::Request solve_request(index_t n, std::uint64_t id,
                             std::uint64_t seed = 1) {
  serve::Request req;
  req.id = id;
  serve::SolveSpec s;
  s.n = n;
  s.seed = seed;
  s.block_side = 32;
  req.payload = s;
  return req;
}

TEST(ServeCancel, DeadlineExpiryDuringExecutionFreesTheWorker) {
  serve::ServiceOptions so;
  so.workers = 1;
  so.cache_capacity = 0;
  serve::SolveService service(so);

  // Big enough that the solve takes far longer than the deadline, which in
  // turn is far longer than dispatch latency: the deadline passes while
  // the worker is mid-solve, and the armed token aborts it cooperatively.
  serve::Request big = solve_request(2560, 1);
  big.deadline = serve::Clock::now() + std::chrono::milliseconds(250);
  auto fut = service.submit(std::move(big));
  const serve::Response r = fut.get();
  EXPECT_EQ(r.status, serve::Status::Cancelled);
  EXPECT_EQ(r.detail, "deadline");
  EXPECT_GT(r.solve_ns, 0);  // aborted during execution, not in queue

  // The worker the abort freed must serve the next request normally.
  const serve::Response next =
      service.submit(solve_request(128, 2)).get();
  EXPECT_EQ(next.status, serve::Status::Ok);
  service.stop();
  const auto st = service.stats();
  EXPECT_EQ(st.cancelled, 1u);
  EXPECT_EQ(st.completed, 1u);
}

TEST(ServeCancel, QueueExpiryStampsTimeInQueueAndCounts) {
  const std::int64_t expired_before =
      obs::metrics().counter("serve.expired").value();
  serve::ServiceOptions so;
  so.workers = 1;
  serve::SolveService service(so);
  serve::Request req = solve_request(64, 9);
  req.deadline = serve::Clock::now() - std::chrono::milliseconds(1);
  const serve::Response r = service.submit(std::move(req)).get();
  EXPECT_EQ(r.status, serve::Status::Expired);
  EXPECT_GE(r.queue_ns, 0);
  EXPECT_EQ(r.solve_ns, 0);  // never reached a worker
  service.stop();
  EXPECT_EQ(service.stats().expired, 1u);
  EXPECT_GT(obs::metrics().counter("serve.expired").value(), expired_before);
}

TEST(ServeCancel, StopWithoutDrainAbortsInFlightSolves) {
  serve::ServiceOptions so;
  so.workers = 1;
  so.cache_capacity = 0;
  serve::SolveService service(so);
  std::vector<std::future<serve::Response>> futs;
  for (int i = 0; i < 3; ++i)
    futs.push_back(service.submit(solve_request(2560, 100 + i, 50 + i)));
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  service.stop(/*drain=*/false);
  for (auto& f : futs) {
    const serve::Response r = f.get();
    EXPECT_EQ(r.status, serve::Status::Cancelled) << "id " << r.id;
  }
  EXPECT_EQ(service.stats().cancelled, 3u);
}

TEST(ServeCancel, PerRequestBackendSelectionMatchesDefault) {
  serve::ServiceOptions so;
  so.workers = 2;
  so.cache_capacity = 0;
  serve::SolveService service(so);
  serve::Request by_name = solve_request(150, 1, 23);
  std::get<serve::SolveSpec>(by_name.payload).backend = "recursive";
  const serve::Response a = service.submit(std::move(by_name)).get();
  const serve::Response b = service.submit(solve_request(150, 2, 23)).get();
  EXPECT_EQ(a.status, serve::Status::Ok);
  EXPECT_EQ(b.status, serve::Status::Ok);
  EXPECT_EQ(a.value, b.value);  // bit-identical across backends

  serve::Request bad = solve_request(64, 3);
  std::get<serve::SolveSpec>(bad.payload).backend = "bogus";
  const serve::Response c = service.submit(std::move(bad)).get();
  EXPECT_EQ(c.status, serve::Status::Error);
  EXPECT_NE(c.detail.find("unknown backend"), std::string::npos);
  service.stop();
}

TEST(ServeCancel, CacheCountersMirroredIntoObsRegistry) {
  auto& m = obs::metrics();
  const std::int64_t hits0 = m.counter("serve.cache.hits").value();
  const std::int64_t miss0 = m.counter("serve.cache.misses").value();
  serve::SolveService service{serve::ServiceOptions{}};
  const serve::Response first = service.submit(solve_request(96, 1)).get();
  const serve::Response second = service.submit(solve_request(96, 2)).get();
  EXPECT_EQ(first.status, serve::Status::Ok);
  EXPECT_EQ(second.status, serve::Status::OkCached);
  service.stop();
  EXPECT_GT(m.counter("serve.cache.hits").value(), hits0);
  EXPECT_GT(m.counter("serve.cache.misses").value(), miss0);
}

}  // namespace
}  // namespace cellnpdp
