// Tests for src/router: the consistent-hash ring's two load-bearing
// properties (uniformity across 1k keys, minimal remap on membership
// change), and the router tier end to end over loopback — value
// correctness through the proxy, content-keyed sharding (every asker of
// one computation lands on one replica), health-probe eviction of a
// stopped replica with continued service, and the synthesized RetryAfter
// when no replica is healthy.
#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "apps/matrix_chain/matrix_chain.hpp"
#include "common/json.hpp"
#include "net/client.hpp"
#include "net/protocol.hpp"
#include "net/server.hpp"
#include "router/hash_ring.hpp"
#include "router/router.hpp"
#include "serve/request.hpp"

namespace cellnpdp::router {
namespace {

using std::chrono::milliseconds;
using net::NpdpClient;
using Reply = NpdpClient::Reply;
using RecvStatus = NpdpClient::RecvStatus;

// --- hash ring -------------------------------------------------------------

std::map<std::string, int> owner_counts(const HashRing& ring, int keys) {
  std::map<std::string, int> counts;
  for (int k = 0; k < keys; ++k) ++counts[ring.lookup(std::uint64_t(k))];
  return counts;
}

TEST(HashRing, DistributionIsNearUniformAcross1kKeys) {
  HashRing ring(64);
  ring.add("r1");
  ring.add("r2");
  ring.add("r3");
  constexpr int kKeys = 1000;
  const auto counts = owner_counts(ring, kKeys);
  ASSERT_EQ(counts.size(), 3u);  // every node owns something
  // Chi-square-ish bound against the uniform expectation. With 64 virtual
  // nodes the arc-share standard deviation is ~1/(3*sqrt(64)) ≈ 4 pp, so
  // a statistic this size (expected O(10)) only fails on real clustering.
  const double expected = double(kKeys) / 3.0;
  double chi2 = 0;
  for (const auto& [node, n] : counts) {
    const double d = double(n) - expected;
    chi2 += d * d / expected;
    // No node may own less than half or more than twice its fair share.
    EXPECT_GT(n, kKeys / 6) << node;
    EXPECT_LT(n, 2 * kKeys / 3) << node;
  }
  EXPECT_LT(chi2, 120.0);
}

TEST(HashRing, RemovingOneNodeRemapsOnlyItsKeys) {
  HashRing ring(64);
  for (const char* n : {"r1", "r2", "r3", "r4"}) ring.add(n);
  constexpr int kKeys = 1000;
  std::vector<std::string> before(kKeys);
  for (int k = 0; k < kKeys; ++k) before[k] = ring.lookup(std::uint64_t(k));

  ring.remove("r2");
  int moved = 0, lost = 0;
  for (int k = 0; k < kKeys; ++k) {
    const std::string after = ring.lookup(std::uint64_t(k));
    if (before[k] == "r2") {
      ++lost;
      EXPECT_NE(after, "r2");
    } else {
      // Minimal remap: a key owned by a survivor never moves.
      EXPECT_EQ(after, before[k]) << "key " << k;
      if (after != before[k]) ++moved;
    }
  }
  EXPECT_EQ(moved, 0);
  EXPECT_GT(lost, 0);           // r2 owned a real share...
  EXPECT_LT(lost, kKeys / 2);   // ...but not a majority
}

TEST(HashRing, AddingTheNodeBackRestoresPlacement) {
  HashRing ring(64);
  for (const char* n : {"r1", "r2", "r3"}) ring.add(n);
  constexpr int kKeys = 500;
  std::vector<std::string> before(kKeys);
  for (int k = 0; k < kKeys; ++k) before[k] = ring.lookup(std::uint64_t(k));
  ring.remove("r3");
  ring.add("r3");
  for (int k = 0; k < kKeys; ++k)
    EXPECT_EQ(ring.lookup(std::uint64_t(k)), before[k]) << "key " << k;
}

TEST(HashRing, LookupExcludingMatchesRemovalPlacement) {
  // The bounded-retry walk must land on exactly the node that inherits
  // the key when its owner leaves the ring: retries after a replica
  // failure warm the cache that failover traffic will hit.
  HashRing ring(64);
  for (const char* n : {"r1", "r2", "r3"}) ring.add(n);
  for (int k = 0; k < 500; ++k) {
    const std::string owner = ring.lookup(std::uint64_t(k));
    const std::string next =
        ring.lookup_excluding(std::uint64_t(k), {owner});
    EXPECT_NE(next, owner);
    HashRing without(64);
    for (const char* n : {"r1", "r2", "r3"})
      if (owner != n) without.add(n);
    EXPECT_EQ(next, without.lookup(std::uint64_t(k))) << "key " << k;
  }
}

TEST(HashRing, EdgeCasesEmptySingleAndIdempotentAdd) {
  HashRing ring(8);
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.lookup(42), "");
  ring.add("only");
  for (int k = 0; k < 32; ++k) EXPECT_EQ(ring.lookup(std::uint64_t(k)),
                                         "only");
  // Every node excluded -> no placement.
  EXPECT_EQ(ring.lookup_excluding(7, {"only"}), "");
  // Re-adding is a no-op, not a duplicate set of points.
  ring.add("only");
  EXPECT_EQ(ring.size(), 1u);
  ring.add("other");
  const auto counts = owner_counts(ring, 1000);
  EXPECT_GT(counts.at("only"), 0);
  EXPECT_GT(counts.at("other"), 0);
}

// --- router end to end -----------------------------------------------------

/// N net-serve replicas on ephemeral ports plus a router over them, with
/// a fast prober so eviction tests stay quick.
struct RouterFixture {
  explicit RouterFixture(int replicas = 3) {
    serve::ServiceOptions so;
    so.workers = 2;
    so.queue_capacity = 64;
    so.cache_capacity = 64;
    for (int i = 0; i < replicas; ++i) {
      net::ServerOptions no;
      no.port = 0;
      servers.push_back(std::make_unique<net::NpdpServer>(no, so));
      std::string err;
      EXPECT_TRUE(servers.back()->start(&err)) << err;
    }
    RouterOptions ro;
    ro.net.port = 0;
    ro.probe_interval_ms = 50;
    ro.probe_timeout_ms = 500;
    ro.connect_timeout_ms = 500;
    for (int i = 0; i < replicas; ++i)
      ro.replicas.push_back({"r" + std::to_string(i + 1), "127.0.0.1",
                             servers[i]->port()});
    router = std::make_unique<NpdpRouter>(ro);
    std::string err;
    EXPECT_TRUE(router->start(&err)) << err;
  }
  ~RouterFixture() {
    if (router) router->stop();
    for (auto& s : servers) s->stop();
  }
  NpdpClient connect() {
    NpdpClient c;
    std::string err;
    EXPECT_TRUE(c.connect("127.0.0.1", router->port(), &err)) << err;
    return c;
  }
  std::uint64_t forwarded(const std::string& name) const {
    for (const auto& h : router->health())
      if (h.name == name) return h.forwarded;
    return 0;
  }
  std::vector<std::unique_ptr<net::NpdpServer>> servers;
  std::unique_ptr<NpdpRouter> router;
};

net::WireRequest chain_req(std::uint64_t id, index_t n, std::uint64_t seed) {
  net::WireRequest w;
  w.id = id;
  w.payload = serve::ChainSpec{n, seed};
  return w;
}

TEST(NpdpRouter, RoundTripThroughRouterMatchesReference) {
  RouterFixture fx;
  NpdpClient cli = fx.connect();
  std::string err;
  Reply rep;
  const serve::ChainSpec spec{24, 11};
  const auto ref = solve_matrix_chain_reference<float>(serve::chain_dims(spec));
  ASSERT_EQ(cli.call(chain_req(1, spec.n, spec.seed), &rep, 10000, &err),
            RecvStatus::Ok)
      << err;
  ASSERT_EQ(rep.kind, Reply::Kind::Result);
  EXPECT_EQ(rep.result.status, serve::Status::Ok);
  EXPECT_EQ(rep.id, 1u);  // the reply is re-stamped with the client's id
  EXPECT_FLOAT_EQ(float(rep.result.value), float(ref.cost));
  // Same computation again: served from the owning replica's cache.
  ASSERT_EQ(cli.call(chain_req(2, spec.n, spec.seed), &rep, 10000, &err),
            RecvStatus::Ok)
      << err;
  EXPECT_EQ(rep.result.status, serve::Status::OkCached);
  EXPECT_FLOAT_EQ(float(rep.result.value), float(ref.cost));
}

TEST(NpdpRouter, OneContentKeyLandsOnExactlyOneReplica) {
  RouterFixture fx;
  NpdpClient cli = fx.connect();
  std::string err;
  Reply rep;
  // 20 requests for the same computation from one client: the placement
  // key is the content hash, so every one lands on the same replica.
  for (int i = 0; i < 20; ++i) {
    ASSERT_EQ(cli.call(chain_req(std::uint64_t(i + 1), 18, 7), &rep, 10000,
                       &err),
              RecvStatus::Ok)
        << err;
    EXPECT_TRUE(rep.result.status == serve::Status::Ok ||
                rep.result.status == serve::Status::OkCached);
  }
  int replicas_hit = 0;
  std::uint64_t total = 0;
  for (const auto& h : fx.router->health()) {
    if (h.forwarded > 0) ++replicas_hit;
    total += h.forwarded;
  }
  EXPECT_EQ(replicas_hit, 1);
  EXPECT_EQ(total, 20u);
}

TEST(NpdpRouter, DistinctKeysShardAcrossReplicas) {
  RouterFixture fx;
  NpdpClient cli = fx.connect();
  std::string err;
  Reply rep;
  // 60 distinct computations spread over the ring: with 64 vnodes per
  // replica every replica owns a share (deterministic placement, so this
  // either always holds or never does).
  for (int i = 0; i < 60; ++i) {
    ASSERT_EQ(cli.call(chain_req(std::uint64_t(i + 1), index_t(8 + i),
                                 std::uint64_t(i)),
                       &rep, 10000, &err),
              RecvStatus::Ok)
        << err;
    EXPECT_EQ(rep.result.status, serve::Status::Ok);
  }
  for (const auto& h : fx.router->health())
    EXPECT_GT(h.forwarded, 0u) << h.name;
}

TEST(NpdpRouter, PingStatsAndBadPayloadSurviveThroughRouter) {
  RouterFixture fx;
  NpdpClient cli = fx.connect();
  std::string err;
  ASSERT_EQ(cli.ping(9, 5000, &err), RecvStatus::Ok) << err;

  std::string json;
  ASSERT_EQ(cli.stats(&json, 5000, &err), RecvStatus::Ok) << err;
  JsonValue root;
  ASSERT_TRUE(json_parse(json, root, &err)) << err << "\n" << json;
  ASSERT_TRUE(root.is_object());
  EXPECT_TRUE(root.has("router"));
  EXPECT_TRUE(root.has("replicas"));
  EXPECT_EQ(root.at("router").at("healthy").number, 3.0);

  // A malformed payload is answered by the router itself (it must decode
  // the payload to place it) and the connection survives.
  std::vector<std::uint8_t> frame;
  net::encode_header(frame, net::MsgType::Chain, 77, 6);
  for (int i = 0; i < 6; ++i) frame.push_back(0xAB);
  ASSERT_TRUE(cli.send_frame(frame, &err)) << err;
  Reply rep;
  ASSERT_EQ(cli.recv_reply(&rep, 5000, &err), RecvStatus::Ok) << err;
  ASSERT_EQ(rep.kind, Reply::Kind::ProtoError);
  EXPECT_EQ(rep.code, net::ProtoErrorCode::BadPayload);
  EXPECT_EQ(rep.id, 77u);
  ASSERT_EQ(cli.call(chain_req(78, 9, 1), &rep, 10000, &err), RecvStatus::Ok)
      << err;
  EXPECT_EQ(rep.result.status, serve::Status::Ok);
}

TEST(NpdpRouter, StoppedReplicaIsEvictedAndServiceContinues) {
  RouterFixture fx;
  NpdpClient cli = fx.connect();
  std::string err;
  Reply rep;
  // Find the replica that owns this computation.
  ASSERT_EQ(cli.call(chain_req(1, 30, 5), &rep, 10000, &err), RecvStatus::Ok)
      << err;
  std::string owner;
  for (const auto& h : fx.router->health())
    if (h.forwarded > 0) owner = h.name;
  ASSERT_FALSE(owner.empty());
  const std::size_t idx = std::size_t(owner[1] - '1');  // "rK" -> K-1

  // Stop the owner; the prober must notice and shrink the ring.
  fx.servers[idx]->stop();
  const auto deadline = std::chrono::steady_clock::now() + milliseconds(5000);
  while (fx.router->stats().healthy == 3 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(milliseconds(10));
  EXPECT_EQ(fx.router->stats().healthy, 2u);

  // The same computation is now owned by a survivor; no client error.
  ASSERT_EQ(cli.call(chain_req(2, 30, 5), &rep, 10000, &err), RecvStatus::Ok)
      << err;
  EXPECT_EQ(rep.result.status, serve::Status::Ok);
  // And so are fresh keys.
  for (int i = 0; i < 10; ++i) {
    ASSERT_EQ(cli.call(chain_req(std::uint64_t(10 + i), index_t(12 + i), 3),
                       &rep, 10000, &err),
              RecvStatus::Ok)
        << err;
    EXPECT_EQ(rep.result.status, serve::Status::Ok);
  }
}

TEST(NpdpRouter, NoHealthyReplicaSynthesizesRetryAfter) {
  // An endpoint that was real once (bind, grab the port, close) so the
  // probe gets a clean connection refusal.
  std::uint16_t dead_port;
  {
    net::ServerOptions no;
    no.port = 0;
    serve::ServiceOptions so;
    so.workers = 1;
    net::NpdpServer probe_target(no, so);
    std::string err;
    ASSERT_TRUE(probe_target.start(&err)) << err;
    dead_port = probe_target.port();
    probe_target.stop();
  }
  RouterOptions ro;
  ro.net.port = 0;
  ro.probe_interval_ms = 50;
  ro.probe_timeout_ms = 300;
  ro.connect_timeout_ms = 300;
  ro.retry_after_hint_ms = 99;
  ro.replicas.push_back({"gone", "127.0.0.1", dead_port});
  NpdpRouter router(ro);
  std::string err;
  ASSERT_TRUE(router.start(&err)) << err;
  EXPECT_EQ(router.stats().healthy, 0u);

  NpdpClient cli;
  ASSERT_TRUE(cli.connect("127.0.0.1", router.port(), &err)) << err;
  Reply rep;
  ASSERT_EQ(cli.call(chain_req(1, 12, 1), &rep, 5000, &err), RecvStatus::Ok)
      << err;
  ASSERT_EQ(rep.kind, Reply::Kind::Result);
  EXPECT_EQ(rep.result.status, serve::Status::RetryAfter);
  EXPECT_EQ(rep.result.backend, "router");
  EXPECT_EQ(rep.result.retry_after_ms, 99);
  EXPECT_GE(router.stats().no_replica, 1u);
  router.stop();
}

}  // namespace
}  // namespace cellnpdp::router
