// Application-level tests: the three NPDP applications the paper names
// must produce provably correct answers through the blocked engine.
#include <gtest/gtest.h>

#include "apps/matrix_chain/matrix_chain.hpp"
#include "apps/optimal_bst/optimal_bst.hpp"
#include "common/rng.hpp"

namespace cellnpdp {
namespace {

std::vector<double> random_dims(index_t matrices, std::uint64_t seed) {
  SplitMix64 rng(seed);
  std::vector<double> p(static_cast<std::size_t>(matrices + 1));
  for (auto& x : p) x = double(rng.next_below(40) + 1);
  return p;
}

class MatrixChainTest : public ::testing::TestWithParam<index_t> {};

TEST_P(MatrixChainTest, EngineMatchesTextbookReference) {
  const index_t m = GetParam();
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const auto p = random_dims(m, seed);
    NpdpOptions opts;
    opts.block_side = 16;
    const auto engine = solve_matrix_chain(p, opts);
    const auto ref = solve_matrix_chain_reference(p);
    EXPECT_EQ(engine.cost, ref.cost) << "m=" << m << " seed=" << seed;
    EXPECT_EQ(engine.parenthesization, ref.parenthesization);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MatrixChainTest,
                         ::testing::Values(1, 2, 3, 5, 10, 33, 64, 100));

TEST(MatrixChain, ClassicClrsExample) {
  // CLRS 15.2: dimensions 30x35,35x15,15x5,5x10,10x20,20x25 -> 15125.
  const std::vector<double> p{30, 35, 15, 5, 10, 20, 25};
  NpdpOptions opts;
  opts.block_side = 8;
  const auto r = solve_matrix_chain(p, opts);
  EXPECT_EQ(r.cost, 15125.0);
  EXPECT_EQ(r.parenthesization, "((A0 (A1 A2)) ((A3 A4) A5))");
}

TEST(MatrixChain, SingleMatrixCostsNothing) {
  const std::vector<double> p{7, 11};
  NpdpOptions opts;
  opts.block_side = 8;
  const auto r = solve_matrix_chain(p, opts);
  EXPECT_EQ(r.cost, 0.0);
  EXPECT_EQ(r.parenthesization, "A0");
}

TEST(MatrixChain, ParallelEngineAgrees) {
  const auto p = random_dims(120, 9);
  NpdpOptions serial, par;
  serial.block_side = par.block_side = 16;
  par.threads = 4;
  par.sched_side = 2;
  EXPECT_EQ(solve_matrix_chain(p, serial).cost,
            solve_matrix_chain(p, par).cost);
}

// --- optimal BST --------------------------------------------------------

BstInstanceData<double> random_bst(index_t keys, std::uint64_t seed) {
  SplitMix64 rng(seed);
  std::vector<double> p(static_cast<std::size_t>(keys + 1), 0.0);
  std::vector<double> q(static_cast<std::size_t>(keys + 1), 0.0);
  double total = 0;
  for (index_t k = 1; k <= keys; ++k) {
    p[static_cast<std::size_t>(k)] = rng.next_in(0.0, 1.0);
    total += p[static_cast<std::size_t>(k)];
  }
  for (index_t g = 0; g <= keys; ++g) {
    q[static_cast<std::size_t>(g)] = rng.next_in(0.0, 1.0);
    total += q[static_cast<std::size_t>(g)];
  }
  for (auto& x : p) x /= total;
  for (auto& x : q) x /= total;
  return make_bst_data(std::move(p), std::move(q));
}

class OptimalBstTest : public ::testing::TestWithParam<index_t> {};

TEST_P(OptimalBstTest, EngineMatchesKnuthReference) {
  const index_t keys = GetParam();
  for (std::uint64_t seed : {4u, 5u, 6u}) {
    const auto d = random_bst(keys, seed);
    NpdpOptions opts;
    opts.block_side = 16;
    const double engine = solve_optimal_bst(d, opts);
    const double ref = solve_optimal_bst_reference(d);
    EXPECT_NEAR(engine, ref, 1e-9) << "keys=" << keys << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, OptimalBstTest,
                         ::testing::Values(1, 2, 3, 7, 20, 50, 101));

TEST(OptimalBst, ClassicClrsExample) {
  // CLRS 15.5: p = {.15,.10,.05,.10,.20}, q = {.05,.10,.05,.05,.05,.10},
  // expected cost 2.75.
  auto d = make_bst_data<double>({0, .15, .10, .05, .10, .20},
                                 {.05, .10, .05, .05, .05, .10});
  NpdpOptions opts;
  opts.block_side = 8;
  EXPECT_NEAR(solve_optimal_bst(d, opts), 2.75, 1e-12);
}

TEST(OptimalBst, KnuthSpeedupGivesIdenticalCosts) {
  for (index_t keys : {5, 23, 64}) {
    const auto d = random_bst(keys, 11);
    EXPECT_NEAR(solve_optimal_bst_reference(d, false),
                solve_optimal_bst_reference(d, true), 1e-12);
  }
}

TEST(OptimalBst, CostBoundedByLogAndLinearExtremes) {
  // Expected cost of any BST lies between ~1 (all mass in one node) and
  // n+1 (degenerate chain); check the optimal one is sane.
  const auto d = random_bst(64, 13);
  NpdpOptions opts;
  opts.block_side = 16;
  const double cost = solve_optimal_bst(d, opts);
  EXPECT_GT(cost, 1.0);
  EXPECT_LT(cost, 65.0);
}

}  // namespace
}  // namespace cellnpdp
