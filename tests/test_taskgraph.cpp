// Dependence graph and task-queue executor tests. The central property:
// the *simplified* graph (nearest left + below) must never let a task run
// before its *full* dependence set (all (si,k) and (k,sj)) has finished.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>

#include "taskgraph/dependence_graph.hpp"
#include "taskgraph/executor.hpp"

namespace cellnpdp {
namespace {

class GraphShapeTest : public ::testing::TestWithParam<index_t> {};

TEST_P(GraphShapeTest, TaskIdAndCoordsAreInverse) {
  BlockDependenceGraph g(GetParam());
  index_t id = 0;
  for (index_t si = 0; si < g.grid_side(); ++si)
    for (index_t sj = si; sj < g.grid_side(); ++sj) {
      EXPECT_EQ(g.task_id(si, sj), id);
      const auto [ri, rj] = g.coords(id);
      EXPECT_EQ(ri, si);
      EXPECT_EQ(rj, sj);
      ++id;
    }
  EXPECT_EQ(g.task_count(), id);
}

TEST_P(GraphShapeTest, DependentsMirrorDependencyCounts) {
  BlockDependenceGraph g(GetParam());
  // Sum over all tasks of |dependents| must equal sum of dependency counts.
  index_t out_edges = 0, in_edges = 0;
  for (index_t id = 0; id < g.task_count(); ++id) {
    const auto [si, sj] = g.coords(id);
    out_edges += static_cast<index_t>(g.dependents(si, sj).size());
    in_edges += g.dependency_count(si, sj);
    // Diagonal tasks are the paper's initially-ready set.
    EXPECT_EQ(g.dependency_count(si, sj) == 0, si == sj);
  }
  EXPECT_EQ(out_edges, in_edges);
}

TEST_P(GraphShapeTest, SimplifiedEdgesAreSubsetOfFullDependencies) {
  BlockDependenceGraph g(GetParam());
  for (index_t id = 0; id < g.task_count(); ++id) {
    const auto [si, sj] = g.coords(id);
    const auto full = g.full_dependencies(si, sj);
    const std::set<std::pair<index_t, index_t>> full_set(full.begin(),
                                                         full.end());
    // The two nearest predecessors must be real dependencies.
    if (si != sj) {
      EXPECT_TRUE(full_set.count({si, sj - 1}));
      EXPECT_TRUE(full_set.count({si + 1, sj}));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sides, GraphShapeTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21));

TEST(ReadyTracker, InitialReadyIsExactlyTheDiagonal) {
  BlockDependenceGraph g(6);
  ReadyTracker t(g);
  const auto ready = t.initial_ready();
  ASSERT_EQ(ready.size(), 6u);
  for (index_t id : ready) {
    const auto [si, sj] = g.coords(id);
    EXPECT_EQ(si, sj);
  }
}

TEST(ReadyTracker, OffDiagonalNeedsExactlyTwoNotifications) {
  BlockDependenceGraph g(3);
  ReadyTracker t(g);
  // Completing (1,1) alone must not release (0,1) or (1,2).
  auto r = t.complete(g.task_id(1, 1));
  EXPECT_TRUE(r.empty());
  // (0,0) done releases (0,1): both its predecessors have now finished.
  r = t.complete(g.task_id(0, 0));
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0], g.task_id(0, 1));
  // (2,2) done releases (1,2).
  r = t.complete(g.task_id(2, 2));
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0], g.task_id(1, 2));
}

class ScheduleValidityTest : public ::testing::TestWithParam<index_t> {};

TEST_P(ScheduleValidityTest, SerialOrderRespectsFullDependenceRelation) {
  BlockDependenceGraph g(GetParam());
  std::vector<index_t> finish_pos(static_cast<std::size_t>(g.task_count()),
                                  -1);
  index_t pos = 0;
  const auto order = TaskQueueExecutor::run_serial(
      g, [&](index_t si, index_t sj) {
        finish_pos[static_cast<std::size_t>(g.task_id(si, sj))] = pos++;
      });
  ASSERT_EQ(static_cast<index_t>(order.size()), g.task_count());

  for (index_t id = 0; id < g.task_count(); ++id) {
    const auto [si, sj] = g.coords(id);
    for (const auto& [di, dj] : g.full_dependencies(si, sj)) {
      EXPECT_LT(finish_pos[static_cast<std::size_t>(g.task_id(di, dj))],
                finish_pos[static_cast<std::size_t>(id)])
          << "(" << si << "," << sj << ") ran before its dependency (" << di
          << "," << dj << ")";
    }
  }
}

TEST_P(ScheduleValidityTest, ParallelRunRespectsFullDependenceRelation) {
  BlockDependenceGraph g(GetParam());
  std::mutex mu;
  std::vector<bool> done(static_cast<std::size_t>(g.task_count()), false);
  std::atomic<int> executed{0};

  TaskQueueExecutor::run(g, 4, [&](index_t si, index_t sj) {
    {
      // At task *start*, the full dependence set must already be done.
      std::lock_guard lk(mu);
      for (const auto& [di, dj] : g.full_dependencies(si, sj))
        EXPECT_TRUE(done[static_cast<std::size_t>(g.task_id(di, dj))])
            << "(" << si << "," << sj << ") started before (" << di << ","
            << dj << ") finished";
    }
    ++executed;
    std::lock_guard lk(mu);
    done[static_cast<std::size_t>(g.task_id(si, sj))] = true;
  });
  EXPECT_EQ(executed.load(), g.task_count());
}

INSTANTIATE_TEST_SUITE_P(Sides, ScheduleValidityTest,
                         ::testing::Values(1, 2, 4, 9, 16));

TEST(Executor, EveryTaskRunsExactlyOnceUnderManyThreads) {
  BlockDependenceGraph g(12);
  std::vector<std::atomic<int>> counts(
      static_cast<std::size_t>(g.task_count()));
  for (auto& c : counts) c = 0;
  for (int rep = 0; rep < 5; ++rep) {
    for (auto& c : counts) c = 0;
    TaskQueueExecutor::run(g, 8, [&](index_t si, index_t sj) {
      ++counts[static_cast<std::size_t>(g.task_id(si, sj))];
    });
    for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
  }
}

}  // namespace
}  // namespace cellnpdp
