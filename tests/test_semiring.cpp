// Semiring-generic engine property tests: every semiring instantiation of
// the blocked SIMD engine must match the semiring-generic scalar reference
// element-for-element with NO tolerance, across block sizes, kernels,
// drivers, and instance modes (pure / weighted / separable).
//
// Bit-exactness across the blocked/SIMD reordering holds because:
//   - min-plus / max-plus / viterbi-log are idempotent selections over
//     identically-computed candidates (each candidate value is the same
//     float expression in every path, and min/max are order-insensitive);
//   - counting is exact because the tests keep every intermediate an
//     integer small enough for the cell type's mantissa, and integer
//     addition in floating point is associative while it stays exact.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "core/maxplus.hpp"
#include "core/reference.hpp"
#include "core/solve.hpp"
#include "layout/convert.hpp"

namespace cellnpdp {
namespace {

enum class Mode { Pure, Weighted, Separable };

constexpr SemiringId kAll[] = {SemiringId::MinPlus, SemiringId::MaxPlus,
                               SemiringId::Counting, SemiringId::ViterbiLog};

/// Canonical instance for a (semiring, mode) pair. The separable-factor
/// and weight storage must outlive the instance.
template <class T>
NpdpInstance<T> make_instance(SemiringId sr, Mode mode, index_t n,
                              std::uint64_t seed, std::vector<T>* factors) {
  NpdpInstance<T> inst;
  inst.n = n;
  inst.semiring = sr;
  inst.init = [sr, seed](index_t i, index_t j) {
    return semiring_init_value<T>(sr, seed, i, j);
  };
  if (mode == Mode::Weighted) {
    // Small per-cell weights in the flavour of the semiring: additive
    // semirings take small magnitudes of either sign, counting takes
    // small positive integers (keeping products integral and >= 1).
    inst.weight = [sr](index_t i, index_t j) {
      const index_t r = (i + 2 * j) % 3;
      switch (sr) {
        case SemiringId::Counting: return T(1 + r);
        case SemiringId::ViterbiLog: return T(-r);
        default: return T(r);
      }
    };
  } else if (mode == Mode::Separable) {
    factors->assign(static_cast<std::size_t>(3 * n), T(0));
    SplitMix64 rng(seed * 31 + 7);
    for (index_t i = 0; i < 3 * n; ++i) {
      // Counting factors stay in {1, 2} so cells grow slowly and every
      // intermediate remains an exact integer; the additive semirings
      // take small mixed-sign reals.
      (*factors)[static_cast<std::size_t>(i)] =
          sr == SemiringId::Counting ? T(1 + rng.next_below(2))
                                     : T(rng.next_in(-2.0, 2.0));
    }
    inst.ku = factors->data();
    inst.kv = factors->data() + n;
    inst.kw = factors->data() + 2 * n;
  }
  return inst;
}

/// EXPECT_EQ every triangle cell (exact equality — NaN-free by
/// construction, so == is the right comparison).
template <class Ref, class Got>
void expect_identical(const Ref& ref, const Got& got, const char* what) {
  ASSERT_EQ(ref.size(), got.size());
  index_t bad = 0;
  for (index_t i = 0; i < ref.size() && bad < 5; ++i)
    for (index_t j = i; j < ref.size() && bad < 5; ++j)
      if (!(ref.at(i, j) == got.at(i, j))) {
        ADD_FAILURE() << what << ": cell (" << i << "," << j
                      << ") ref=" << ref.at(i, j) << " got=" << got.at(i, j);
        ++bad;
      }
}

TEST(SemiringNames, RoundTrip) {
  for (SemiringId sr : kAll) {
    SemiringId back;
    ASSERT_TRUE(semiring_from_name(semiring_name(sr), &back));
    EXPECT_EQ(back, sr);
  }
  SemiringId out;
  EXPECT_FALSE(semiring_from_name("tropical-deluxe", &out));
}

TEST(SemiringConstants, ZeroAnnihilatesAndOneIsNeutral) {
  with_semiring<float>(SemiringId::MinPlus, [](auto) {});
  for (SemiringId sr : kAll) {
    with_semiring<double>(sr, [](auto s) {
      using S = decltype(s);
      const double x = 3.25;
      EXPECT_EQ(S::plus(S::zero(), x), x);
      EXPECT_EQ(S::times(S::one(), x), x);
    });
  }
}

TEST(SemiringReference, MinPlusInstantiationMatchesLegacyReference) {
  for (Mode mode : {Mode::Pure, Mode::Weighted, Mode::Separable}) {
    std::vector<float> factors;
    const auto inst =
        make_instance<float>(SemiringId::MinPlus, mode, 61, 5, &factors);
    const auto legacy = solve_reference(inst);
    const auto generic = solve_reference_semiring<MinPlusSemiring<float>>(inst);
    expect_identical(legacy, generic, "legacy vs generic reference");
  }
}

// The core property sweep: blocked SIMD engine == generic scalar
// reference, for every semiring x mode x block size. Counting runs in
// double at sizes where every intermediate is an exact integer (see the
// header comment); the selection semirings sweep larger float tables.
TEST(SemiringProperty, BlockedMatchesReferenceAcrossBlockSizes) {
  for (SemiringId sr : kAll) {
    const bool counting = sr == SemiringId::Counting;
    for (Mode mode : {Mode::Pure, Mode::Weighted, Mode::Separable}) {
      for (index_t bs : {8, 16, 24, 32}) {
        NpdpOptions opts;
        opts.block_side = bs;
        if (counting) {
          // Sizes chosen so the largest cell stays far below 2^53 (cell
          // magnitude grows ~3-5 bits per span step depending on mode).
          const index_t n = mode == Mode::Pure        ? 12
                            : mode == Mode::Weighted  ? 10
                                                      : 9;
          std::vector<double> factors;
          const auto inst =
              make_instance<double>(sr, mode, n, 3, &factors);
          const auto ref = solve_reference_any(inst);
          const auto got = solve_blocked(inst, opts);
          expect_identical(ref, to_triangular(got), "counting");
        } else {
          std::vector<float> factors;
          const auto inst = make_instance<float>(sr, mode, 75, 3, &factors);
          const auto ref = solve_reference_any(inst);
          const auto got = solve_blocked(inst, opts);
          expect_identical(ref, to_triangular(got),
                           std::string(semiring_name(sr)).c_str());
        }
      }
    }
  }
}

TEST(SemiringProperty, EveryKernelKindMatchesReference) {
  for (SemiringId sr : kAll) {
    const bool counting = sr == SemiringId::Counting;
    for (KernelKind kind :
         {KernelKind::Scalar, KernelKind::Native, KernelKind::Wide}) {
      NpdpOptions opts;
      opts.block_side = 16;
      opts.kernel = kind;
      if (counting) {
        std::vector<double> factors;
        const auto inst =
            make_instance<double>(sr, Mode::Pure, 12, 11, &factors);
        const auto ref = solve_reference_any(inst);
        const auto got = solve_blocked(inst, opts);
        expect_identical(ref, to_triangular(got), "counting kernel");
      } else {
        std::vector<float> factors;
        const auto inst =
            make_instance<float>(sr, Mode::Weighted, 70, 11, &factors);
        const auto ref = solve_reference_any(inst);
        const auto got = solve_blocked(inst, opts);
        expect_identical(ref, to_triangular(got), "kernel sweep");
      }
    }
  }
}

// The parallel and wavefront drivers relax blocks in a different global
// order; for the non-idempotent counting semiring this is the test that
// the exactly-once coverage argument survives tier-2 scheduling.
TEST(SemiringProperty, ParallelAndWavefrontDriversMatch) {
  for (SemiringId sr : kAll) {
    const bool counting = sr == SemiringId::Counting;
    NpdpOptions opts;
    opts.block_side = 8;
    opts.threads = 4;
    opts.sched_side = 2;
    if (counting) {
      std::vector<double> factors;
      const auto inst = make_instance<double>(sr, Mode::Pure, 12, 9, &factors);
      const auto ref = solve_reference_any(inst);
      expect_identical(ref, to_triangular(solve_blocked_parallel(inst, opts)),
                       "counting parallel");
      SolveStats ss;
      expect_identical(ref,
                       to_triangular(solve_blocked_wavefront(inst, opts, &ss)),
                       "counting wavefront");
    } else {
      std::vector<float> factors;
      const auto inst = make_instance<float>(sr, Mode::Weighted, 90, 9,
                                             &factors);
      const auto ref = solve_reference_any(inst);
      expect_identical(ref, to_triangular(solve_blocked_parallel(inst, opts)),
                       "parallel");
      SolveStats ss;
      expect_identical(ref,
                       to_triangular(solve_blocked_wavefront(inst, opts, &ss)),
                       "wavefront");
    }
  }
}

TEST(SemiringCounting, AgreesWithIndependentCombinatorics) {
  // With init == 1 everywhere and no weights, pure-mode counting solves
  //   d[i][j] = seed(=2 for j>i: init + init*d[i][i]) + sum_k d[i][k]d[k][j]
  // which a direct O(n^3) evaluation reproduces; this pins the engine to
  // an arithmetic meaning, not just to the shared reference formula.
  NpdpInstance<double> inst;
  inst.n = 12;
  inst.semiring = SemiringId::Counting;
  inst.init = [](index_t, index_t) { return 1.0; };
  std::vector<std::vector<double>> d(
      static_cast<std::size_t>(inst.n),
      std::vector<double>(static_cast<std::size_t>(inst.n), 0.0));
  for (index_t i = 0; i < inst.n; ++i)
    d[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)] = 1.0;
  for (index_t span = 1; span < inst.n; ++span)
    for (index_t i = 0; i + span < inst.n; ++i) {
      const index_t j = i + span;
      double acc = 2.0;  // init + init * d[i][i]
      for (index_t k = i + 1; k < j; ++k)
        acc += d[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)] *
               d[static_cast<std::size_t>(k)][static_cast<std::size_t>(j)];
      d[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = acc;
    }
  NpdpOptions opts;
  opts.block_side = 8;
  const auto got = solve_blocked(inst, opts);
  for (index_t i = 0; i < inst.n; ++i)
    for (index_t j = i; j < inst.n; ++j)
      EXPECT_EQ(got.at(i, j),
                d[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)])
          << i << "," << j;
}

TEST(SemiringViterbiLog, MostProbableDerivationInLogSpace) {
  // viterbi-log runs max-plus arithmetic over log-probs: exponentiating
  // the solved cell must equal the max over split products of
  // probabilities (checked on a small instance against a direct search).
  NpdpInstance<float> inst;
  inst.n = 9;
  inst.semiring = SemiringId::ViterbiLog;
  inst.init = [](index_t i, index_t j) {
    return semiring_init_value<float>(SemiringId::ViterbiLog, 21, i, j) /
           100.0f;  // log-probs in (-1, 0]
  };
  NpdpOptions opts;
  opts.block_side = 8;
  const auto got = solve_blocked(inst, opts);
  const auto ref = solve_reference_any(inst);
  expect_identical(ref, to_triangular(got), "viterbi-log");
  for (index_t i = 0; i < inst.n; ++i)
    for (index_t j = i; j < inst.n; ++j) {
      EXPECT_LE(got.at(i, j), 0.0f);
      EXPECT_GE(got.at(i, j), inst.init(i, j));  // max can only raise
    }
}

TEST(SemiringEngine, InstantiationMismatchThrows) {
  NpdpInstance<float> inst;
  inst.n = 8;
  inst.semiring = SemiringId::Counting;
  inst.init = [](index_t, index_t) { return 1.0f; };
  NpdpOptions opts;
  opts.block_side = 8;
  BlockedTriangularMatrix<float> mat(inst.n, opts.block_side);  // +inf pad
  // The matrix carries min-plus padding but the instance asks for
  // counting: the engine must refuse rather than read poisoned padding.
  ExecutionContext ctx;
  ctx.tuning = opts;
  EXPECT_THROW(solve_blocked_serial_into(mat, inst, ctx),
               std::invalid_argument);
  mat.reset(semiring_zero<float>(SemiringId::Counting));
  EXPECT_EQ(solve_blocked_serial_into(mat, inst, ctx), SolveStatus::Ok);
}

TEST(SemiringMaxPlus, NativeMatchesNegationAdapterBitForBit) {
  // Float negation is exact, so the historical negate-and-solve adapter
  // is a bit-level oracle for the native max-plus instantiation.
  for (index_t n : {5, 40, 77}) {
    NpdpInstance<float> inst;
    inst.n = n;
    inst.init = [n](index_t i, index_t j) {
      return random_init_value<float>(900 + static_cast<std::uint64_t>(n), i,
                                      j) -
             50.0f;
    };
    NpdpOptions opts;
    opts.block_side = 16;
    const auto native = solve_blocked_maxplus(inst, opts);
    const auto negated = solve_blocked_maxplus_via_negation(inst, opts);
    expect_identical(to_triangular(negated), to_triangular(native),
                     "native vs negation");
  }
}

}  // namespace
}  // namespace cellnpdp
