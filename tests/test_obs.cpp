// Observability layer: tracer span semantics, Chrome-trace JSON
// well-formedness, metrics registry under concurrency, and end-to-end
// consistency of a traced parallel solve.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <string_view>
#include <thread>

#include "common/json.hpp"
#include "common/rng.hpp"
#include "core/solve.hpp"
#include "obs/exposition.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/request_log.hpp"
#include "obs/span_context.hpp"
#include "obs/trace.hpp"
#include "obs/trace_export.hpp"

namespace cellnpdp {
namespace {

using obs::Tracer;

// Collapses a snapshot into one event list (tests below run either on a
// single thread or count across all lanes).
std::vector<obs::TraceEvent> all_events(
    const std::vector<obs::ThreadTrace>& threads) {
  std::vector<obs::TraceEvent> out;
  for (const auto& t : threads)
    out.insert(out.end(), t.events.begin(), t.events.end());
  return out;
}

TEST(Trace, SpanNestingAndOrdering) {
  Tracer::instance().start();
  {
    obs::TraceSpan outer("test", "outer");
    {
      obs::TraceSpan inner("test", "inner", 7, 9);
    }
    obs::trace_instant("test", "marker");
  }
  Tracer::instance().stop();

  const auto threads = Tracer::instance().snapshot();
  const auto events = all_events(threads);
  ASSERT_EQ(events.size(), 3u);

  // Spans are recorded at close, so the inner span lands first.
  const auto& inner = events[0];
  const auto& marker = events[1];
  const auto& outer = events[2];
  EXPECT_STREQ(inner.name, "inner");
  EXPECT_STREQ(outer.name, "outer");
  EXPECT_EQ(inner.a0, 7);
  EXPECT_EQ(inner.a1, 9);
  EXPECT_EQ(marker.ph, 'i');

  // Proper nesting: outer starts no later than inner and ends no earlier.
  EXPECT_LE(outer.ts_ns, inner.ts_ns);
  EXPECT_GE(outer.ts_ns + outer.dur_ns, inner.ts_ns + inner.dur_ns);
  // The instant fired between inner close and outer close.
  EXPECT_GE(marker.ts_ns, inner.ts_ns + inner.dur_ns);
  EXPECT_LE(marker.ts_ns, outer.ts_ns + outer.dur_ns);
}

TEST(Trace, DisabledRecordsNothing) {
  Tracer::instance().start();
  Tracer::instance().stop();
  {
    obs::TraceSpan span("test", "ignored");
    obs::trace_instant("test", "ignored");
  }
  EXPECT_TRUE(all_events(Tracer::instance().snapshot()).empty());
}

TEST(Trace, RingOverflowKeepsNewestEvents) {
  Tracer::instance().start(/*per_thread_capacity=*/16);
  for (int i = 0; i < 50; ++i)
    obs::trace_instant("test", "tick", i);
  Tracer::instance().stop();

  const auto threads = Tracer::instance().snapshot();
  ASSERT_EQ(threads.size(), 1u);
  EXPECT_EQ(threads[0].events.size(), 16u);
  EXPECT_EQ(threads[0].dropped, 34u);
  // Chronological order, ending at the newest sample.
  EXPECT_EQ(threads[0].events.front().a0, 34);
  EXPECT_EQ(threads[0].events.back().a0, 49);
}

TEST(Trace, ChromeExportIsValidJson) {
  Tracer::instance().start();
  Tracer::instance().name_this_thread("main");
  {
    obs::TraceSpan s("engine", "middle", 1, 2);
  }
  obs::trace_counter("sched", "ready_depth", 3);
  Tracer::instance().stop();

  std::ostringstream os;
  obs::write_chrome_trace(os, Tracer::instance().snapshot());

  JsonValue root;
  std::string err;
  ASSERT_TRUE(json_parse(os.str(), root, &err)) << err;
  ASSERT_TRUE(root.is_object());
  ASSERT_TRUE(root.has("traceEvents"));
  const auto& events = root.at("traceEvents").arr;
  // process_name + thread_name metadata + span + counter.
  ASSERT_GE(events.size(), 4u);

  bool saw_span = false, saw_counter = false, saw_name = false;
  for (const auto& ev : events) {
    ASSERT_TRUE(ev.is_object());
    ASSERT_TRUE(ev.has("ph"));
    const std::string ph = ev.at("ph").str;
    if (ph == "X") {
      saw_span = true;
      EXPECT_TRUE(ev.at("ts").is_number());
      EXPECT_TRUE(ev.at("dur").is_number());
      EXPECT_GE(ev.at("dur").number, 0.0);
      EXPECT_EQ(ev.at("name").str, "middle");
      EXPECT_EQ(ev.at("args").at("a0").number, 1);
      EXPECT_EQ(ev.at("args").at("a1").number, 2);
    } else if (ph == "C") {
      saw_counter = true;
      EXPECT_EQ(ev.at("args").at("value").number, 3);
    } else if (ph == "M" && ev.at("name").str == "thread_name") {
      saw_name = ev.at("args").at("name").str == "main";
    }
  }
  EXPECT_TRUE(saw_span);
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_name);
}

TEST(Metrics, ConcurrentIncrementsAreExact) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("test.hits");
  obs::Histogram& h = reg.histogram("test.lat");

  constexpr int kThreads = 8, kIter = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIter; ++i) {
        c.add();
        h.observe(t * kIter + i);
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(c.value(), std::int64_t(kThreads) * kIter);
  EXPECT_EQ(h.count(), std::int64_t(kThreads) * kIter);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), std::int64_t(kThreads) * kIter - 1);

  std::ostringstream os;
  reg.write_json(os);
  JsonValue root;
  std::string err;
  ASSERT_TRUE(json_parse(os.str(), root, &err)) << err;
  EXPECT_EQ(root.at("counters").at("test.hits").number,
            double(kThreads) * kIter);
  EXPECT_EQ(root.at("histograms").at("test.lat").at("count").number,
            double(kThreads) * kIter);
}

TEST(Metrics, HistogramQuantiles) {
  obs::Histogram h;
  for (int i = 0; i < 1000; ++i) h.observe(100);  // bucket [64,128)
  h.observe(100000);                              // one outlier
  EXPECT_GE(h.quantile_upper_bound(0.5), 100);
  EXPECT_LT(h.quantile_upper_bound(0.5), 128);
  EXPECT_GE(h.quantile_upper_bound(1.0), 100000 / 2);
}

TEST(Metrics, InterpolatedQuantileIsClampedToObservedRange) {
  // One constant value: every quantile is exactly that value (the old
  // bucket-upper-bound answer overstated 100 as 127).
  obs::Histogram h;
  for (int i = 0; i < 1000; ++i) h.observe(100);
  EXPECT_DOUBLE_EQ(h.quantile(0.01), 100.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.50), 100.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 100.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.00), 100.0);

  // Uniform samples over [0, 1024): the interpolated quantile must land
  // within one log2 bucket of the exact order statistic, and always
  // inside [min, max]; the upper bound may legally overstate by ~2x.
  obs::Histogram u;
  for (int i = 0; i < 1024; ++i) u.observe(i);
  for (const double q : {0.1, 0.25, 0.5, 0.9, 0.99}) {
    const double exact = q * 1023;
    const double est = u.quantile(q);
    EXPECT_GE(est, 0.0) << q;
    EXPECT_LE(est, 1023.0) << q;
    // Within the containing power-of-two bucket of the true value.
    EXPECT_LE(est, 2 * exact + 2) << q;
    EXPECT_GE(est, exact / 2 - 2) << q;
    // At an exact bucket boundary the interpolation reaches the exclusive
    // hi (2^b), one past the inclusive bucket-ceiling bound (2^b - 1).
    EXPECT_LE(est, double(u.quantile_upper_bound(q)) + 1) << q;
  }
  EXPECT_EQ(obs::Histogram{}.quantile(0.5), 0.0);  // empty histogram
}

TEST(Metrics, ConcurrentObserveMatchesSerialGroundTruth) {
  // The same deterministic sample stream observed from 8 threads and
  // from one thread must land in identical buckets with identical
  // count/sum/min/max — no lost updates anywhere in the histogram.
  constexpr int kThreads = 8, kIter = 10000;
  obs::Histogram par, ser;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&par, t] {
      SplitMix64 rng(1000 + std::uint64_t(t));
      for (int i = 0; i < kIter; ++i)
        par.observe(std::int64_t(rng.next_below(1u << 20)));
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) {
    SplitMix64 rng(1000 + std::uint64_t(t));
    for (int i = 0; i < kIter; ++i)
      ser.observe(std::int64_t(rng.next_below(1u << 20)));
  }
  EXPECT_EQ(par.count(), ser.count());
  EXPECT_EQ(par.sum(), ser.sum());
  EXPECT_EQ(par.min(), ser.min());
  EXPECT_EQ(par.max(), ser.max());
  for (int b = 0; b < obs::Histogram::kBuckets; ++b)
    EXPECT_EQ(par.bucket(b), ser.bucket(b)) << "bucket " << b;
  EXPECT_DOUBLE_EQ(par.quantile(0.99), ser.quantile(0.99));
}

TEST(Metrics, SnapshotCapturesAllFamiliesWithStableOrdering) {
  obs::MetricsRegistry reg;
  reg.counter("z.last").add(3);
  reg.counter("a.first").add(1);
  reg.counter("m.middle").add(2);
  reg.gauge("g.depth").set(4.5);
  reg.histogram("h.lat").observe(100);
  reg.histogram("h.lat").observe(300);

  const obs::MetricsSnapshot s1 = reg.snapshot();
  ASSERT_EQ(s1.counters.size(), 3u);
  EXPECT_EQ(s1.counters[0].first, "a.first");
  EXPECT_EQ(s1.counters[1].first, "m.middle");
  EXPECT_EQ(s1.counters[2].first, "z.last");
  EXPECT_EQ(s1.counter_or("m.middle", -1), 2);
  EXPECT_EQ(s1.counter_or("missing", -1), -1);
  const obs::HistogramSnapshot* h = s1.find_histogram("h.lat");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 2);
  EXPECT_EQ(h->sum, 400);
  EXPECT_EQ(h->min, 100);
  EXPECT_EQ(h->max, 300);
  // Snapshot quantiles agree with the live histogram's.
  EXPECT_DOUBLE_EQ(h->quantile(0.5), reg.histogram("h.lat").quantile(0.5));

  // Deltas between successive snapshots are monotone per counter.
  reg.counter("a.first").add(10);
  const obs::MetricsSnapshot s2 = reg.snapshot();
  for (std::size_t i = 0; i < s1.counters.size(); ++i) {
    EXPECT_EQ(s2.counters[i].first, s1.counters[i].first);
    EXPECT_GE(s2.counters[i].second, s1.counters[i].second);
  }
}

TEST(Exposition, NamesAreSanitizedAndLabelsEscaped) {
  EXPECT_EQ(obs::prometheus_name("serve.status.ok", "cellnpdp"),
            "cellnpdp_serve_status_ok");
  EXPECT_EQ(obs::prometheus_name("net.bytes-in/sec"), "net_bytes_in_sec");
  EXPECT_EQ(obs::prometheus_name("9lives"), "_9lives");  // no leading digit
  EXPECT_EQ(obs::prometheus_escape_label("plain"), "plain");
  EXPECT_EQ(obs::prometheus_escape_label("a\"b\\c\nd"),
            "a\\\"b\\\\c\\nd");
}

TEST(Exposition, WritesCountersGaugesAndSummaryQuantiles) {
  obs::MetricsRegistry reg;
  reg.counter("serve.status.ok").add(7);
  reg.gauge("net.active_conns").set(2);
  for (int i = 0; i < 100; ++i) reg.histogram("serve.total_ns").observe(1000);

  std::vector<obs::PromLabeledSample> extra;
  extra.push_back({"breaker_state", {{"backend", "ref\"erence"}}, 1.0});
  std::ostringstream os;
  obs::write_prometheus_text(os, reg.snapshot(), extra);
  const std::string out = os.str();

  EXPECT_NE(out.find("# TYPE cellnpdp_serve_status_ok counter"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("cellnpdp_serve_status_ok 7"), std::string::npos);
  EXPECT_NE(out.find("cellnpdp_net_active_conns 2"), std::string::npos);
  EXPECT_NE(out.find("cellnpdp_serve_total_ns{quantile=\"0.99\"} 1000"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("cellnpdp_serve_total_ns_count 100"), std::string::npos);
  EXPECT_NE(out.find("cellnpdp_serve_total_ns_sum 100000"),
            std::string::npos);
  EXPECT_NE(out.find("cellnpdp_breaker_state{backend=\"ref\\\"erence\"} 1"),
            std::string::npos)
      << out;
  // Exposition text ends with a newline (scrape format requirement).
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.back(), '\n');
}

TEST(RequestLog, AppendsAnnotatesSamplesAndWritesJsonl) {
  obs::RequestLog log;
  log.enable(/*capacity=*/8);
  obs::WideEvent ev;
  ev.trace_id = 42;
  ev.request_id = 7;
  ev.kind = "chain";
  ev.status = "ok";
  ev.backend = "blocked-serial";
  ev.queue_ns = 1000;
  ev.solve_ns = 2000;
  ev.total_ns = 3500;
  ev.retries = 1;
  log.append(ev);
  log.annotate_encode(7, 450);

  const auto events = log.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].encode_ns, 450);

  std::ostringstream os;
  log.write_jsonl(os);
  JsonValue root;
  std::string err;
  ASSERT_TRUE(json_parse(os.str(), root, &err)) << err << "\n" << os.str();
  ASSERT_TRUE(root.is_object());
  EXPECT_EQ(root.at("trace_id").number, 42);
  EXPECT_EQ(root.at("id").number, 7);
  EXPECT_EQ(root.at("kind").str, "chain");
  EXPECT_EQ(root.at("status").str, "ok");
  EXPECT_EQ(root.at("backend").str, "blocked-serial");
  EXPECT_EQ(root.at("queue_ns").number, 1000);
  EXPECT_EQ(root.at("solve_ns").number, 2000);
  EXPECT_EQ(root.at("encode_ns").number, 450);
  EXPECT_EQ(root.at("total_ns").number, 3500);
  EXPECT_EQ(root.at("retries").number, 1);

  // Ring keeps the newest `capacity` records.
  for (std::uint64_t i = 0; i < 20; ++i) {
    obs::WideEvent e;
    e.request_id = 100 + i;
    log.append(e);
  }
  const auto tail = log.snapshot();
  ASSERT_EQ(tail.size(), 8u);
  EXPECT_EQ(tail.back().request_id, 119u);
  EXPECT_EQ(tail.front().request_id, 112u);

  // Keep-1-of-N sampling is deterministic on trace_id ^ request_id.
  obs::RequestLog sampled;
  sampled.enable(1024);
  sampled.set_sample_every(10);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    obs::WideEvent e;
    e.trace_id = obs::next_trace_id();
    e.request_id = i;
    sampled.append(e);
  }
  const std::size_t kept = sampled.snapshot().size();
  EXPECT_GT(kept, 50u);   // ~100 expected; the hash is not exact
  EXPECT_LT(kept, 200u);
  EXPECT_EQ(kept + sampled.sampled_out(), 1000u);
  // Disabled log drops everything silently.
  obs::RequestLog off;
  obs::WideEvent e2;
  off.append(e2);
  EXPECT_TRUE(off.snapshot().empty());
}

TEST(SpanContext, RootContextsAreUniqueAndNonZero) {
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const obs::SpanContext c = obs::make_root_context(true);
    EXPECT_TRUE(c.valid());
    EXPECT_NE(c.trace_id, 0u);
    EXPECT_EQ(c.parent_span_id, c.trace_id);  // root: parent == self
    EXPECT_TRUE(seen.insert(c.trace_id).second) << "duplicate trace id";
  }
}

// Builds one cat:"req" trace event as JSON text.
std::string req_event(const char* name, const char* ph, long a0,
                      long a1 = -1) {
  std::string s = "{\"name\":\"" + std::string(name) + "\",\"cat\":\"req\","
                  "\"ph\":\"" + ph + "\",\"pid\":0,\"tid\":1,\"ts\":1.0";
  if (std::string(ph) == "X") s += ",\"dur\":2.0";
  s += ",\"args\":{\"a0\":" + std::to_string(a0);
  if (a1 >= 0) s += ",\"a1\":" + std::to_string(a1);
  s += "}}";
  return s;
}

std::string trace_doc(const std::vector<std::string>& events) {
  std::string s = "{\"traceEvents\":[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (i > 0) s += ",";
    s += events[i];
  }
  return s + "]}";
}

TEST(TraceExport, MergedTracesGetDistinctPidsAndKeepAllOtherKeys) {
  JsonValue client, server;
  std::string err;
  ASSERT_TRUE(json_parse(trace_doc({req_event("client", "X", 7)}), client,
                         &err))
      << err;
  ASSERT_TRUE(json_parse(
      trace_doc({req_event("decode", "i", 7), req_event("queue", "X", 7)}),
      server, &err))
      << err;
  std::ostringstream os;
  obs::merge_chrome_traces(os, {&client, &server});
  JsonValue merged;
  ASSERT_TRUE(json_parse(os.str(), merged, &err)) << err << "\n" << os.str();
  const auto& events = merged.at("traceEvents").arr;
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].at("pid").number, 0);  // first input file
  EXPECT_EQ(events[1].at("pid").number, 1);  // second input file
  EXPECT_EQ(events[2].at("pid").number, 1);
  EXPECT_EQ(events[0].at("name").str, "client");
  EXPECT_EQ(events[0].at("args").at("a0").number, 7);
  EXPECT_EQ(events[2].at("dur").number, 2.0);
}

TEST(TraceExport, ChainAnalysisCountsCompleteChainsAndOrphans) {
  // Chain 1: complete success (client + decode + queue + solve + encode +
  // respond with Ok). Chain 2: complete failure path (no solver work, but
  // respond carries a non-success status). Chain 3: client span whose
  // respond says Ok but no solve/cache — incomplete. Chain 4: server-side
  // events with no client span — an orphan.
  const std::string doc = trace_doc({
      req_event("client", "X", 1), req_event("decode", "i", 1),
      req_event("queue", "X", 1), req_event("solve", "X", 1),
      req_event("encode", "i", 1), req_event("respond", "i", 1, 0),
      req_event("client", "X", 2), req_event("decode", "i", 2),
      req_event("queue", "X", 2), req_event("encode", "i", 2),
      req_event("respond", "i", 2, 3),  // Shed
      req_event("client", "X", 3), req_event("decode", "i", 3),
      req_event("queue", "X", 3), req_event("encode", "i", 3),
      req_event("respond", "i", 3, 0),  // Ok but no work span
      req_event("decode", "i", 4), req_event("queue", "X", 4),
  });
  JsonValue root;
  std::string err;
  ASSERT_TRUE(json_parse(doc, root, &err)) << err;
  const obs::ChainSummary cs = obs::analyze_request_chains(root, {0, 1, 7});
  EXPECT_EQ(cs.with_client, 3);
  EXPECT_EQ(cs.complete, 2);
  EXPECT_EQ(cs.orphans, 1);
  ASSERT_EQ(cs.chains.size(), 4u);
  bool saw_shed = false;
  for (const auto& ci : cs.chains)
    if (ci.trace_id == 2) {
      saw_shed = true;
      EXPECT_EQ(ci.status, 3);
      EXPECT_FALSE(ci.solve);
    }
  EXPECT_TRUE(saw_shed);
}

// End-to-end: a traced parallel solve must produce exactly one completed
// "task" span per scheduling block, distributed over the worker lanes,
// and the busy time the executor reports must equal the summed task-span
// durations (they bracket the same region).
TEST(Trace, ParallelSolveEmitsOneSpanPerSchedulingBlock) {
  NpdpInstance<float> inst;
  inst.n = 256;
  inst.init = [](index_t i, index_t j) {
    return i == j ? 0.0f : float((i * 7 + j * 13) % 100);
  };
  NpdpOptions opts;
  opts.block_side = 32;
  opts.threads = 4;

  Tracer::instance().start();
  SolveStats ss;
  const auto table = solve_blocked_parallel(inst, opts, &ss);
  Tracer::instance().stop();

  const index_t m = ceil_div(inst.n, opts.block_side);
  const index_t expected_tasks = triangle_cells(m);
  EXPECT_EQ(ss.tasks, expected_tasks);

  const auto threads = Tracer::instance().snapshot();
  std::int64_t task_spans = 0, task_ns = 0;
  std::set<std::pair<std::int64_t, std::int64_t>> coords;
  bool saw_middle = false, saw_inner = false, saw_corner = false;
  for (const auto& t : threads) {
    EXPECT_EQ(t.dropped, 0u);
    for (const auto& ev : t.events) {
      if (ev.ph != 'X') continue;
      EXPECT_GE(ev.dur_ns, 0);
      if (std::string_view(ev.name) == "task") {
        ++task_spans;
        task_ns += ev.dur_ns;
        coords.emplace(ev.a0, ev.a1);
      }
      const std::string_view cat(ev.cat);
      saw_middle |= cat == "middle";
      saw_inner |= cat == "inner";
      saw_corner |= cat == "corner";
    }
  }
  // Every scheduling block produced exactly one begin/end pair, with
  // distinct (si,sj) coordinates.
  EXPECT_EQ(task_spans, expected_tasks);
  EXPECT_EQ(static_cast<index_t>(coords.size()), expected_tasks);
  EXPECT_TRUE(saw_middle);
  EXPECT_TRUE(saw_inner);
  EXPECT_TRUE(saw_corner);

  // Executor busy time == summed task-span durations (same bracketed
  // region, measured with separate clock reads — allow small jitter).
  const double busy = ss.busy_total();
  const double spans = double(task_ns) / 1e9;
  EXPECT_NEAR(busy, spans, 0.05 * std::max(busy, spans) + 1e-3);
  // Busy time can never exceed workers * wall.
  EXPECT_LE(busy, ss.wall_seconds * double(ss.worker_busy.size()) * 1.05);
  EXPECT_GT(ss.utilization(), 0.0);
  EXPECT_LE(ss.utilization(), 1.01);

  // The merged engine counters must match a single-threaded reference.
  SolveStats serial;
  const auto ref = solve_blocked_serial(inst, opts, &serial);
  EXPECT_EQ(ss.engine.kernel_calls, serial.engine.kernel_calls);
  EXPECT_EQ(ss.engine.corner_relax, serial.engine.corner_relax);
  EXPECT_EQ(ss.engine.diag_relax, serial.engine.diag_relax);
  EXPECT_EQ(ss.engine.cells_finalized, serial.engine.cells_finalized);

  // And the parallel solve is still correct.
  for (index_t j = 0; j < inst.n; j += 17)
    EXPECT_EQ(table.at(0, j), ref.at(0, j));
}

TEST(Report, UtilizationFoldsBusyIntoMeasuredU) {
  obs::UtilizationReport r;
  r.wall_seconds = 2.0;
  r.worker_busy = {2.0, 1.0, 1.0};  // 4s busy over 3 workers * 2s wall
  EXPECT_DOUBLE_EQ(r.busy_total(), 4.0);
  EXPECT_NEAR(r.measured_utilization(), 4.0 / 6.0, 1e-12);

  ModelParams p;
  p.n1 = 2048;
  p.cores = 3;
  p.n2_override = 64;
  std::ostringstream os;
  obs::print_utilization_report(os, r, p);
  const std::string out = os.str();
  EXPECT_NE(out.find("worker 0"), std::string::npos);
  EXPECT_NE(out.find("measured worker utilization"), std::string::npos);
  EXPECT_NE(out.find("model prediction"), std::string::npos);
}

TEST(Report, PhaseTotalsAggregateByCategory) {
  std::vector<obs::ThreadTrace> threads(2);
  obs::TraceEvent a;
  a.name = "middle";
  a.cat = "middle";
  a.ts_ns = 0;
  a.dur_ns = 100;
  obs::TraceEvent b = a;
  b.cat = "inner";
  b.name = "inner";
  b.dur_ns = 50;
  threads[0].events = {a, b};
  threads[1].events = {a};

  const auto totals = obs::aggregate_phase_totals(threads);
  ASSERT_EQ(totals.size(), 2u);
  for (const auto& pt : totals) {
    if (pt.cat == "middle") {
      EXPECT_EQ(pt.total_ns, 200);
      EXPECT_EQ(pt.spans, 2);
    } else {
      EXPECT_EQ(pt.cat, "inner");
      EXPECT_EQ(pt.total_ns, 50);
      EXPECT_EQ(pt.spans, 1);
    }
  }
}

}  // namespace
}  // namespace cellnpdp
