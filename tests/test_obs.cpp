// Observability layer: tracer span semantics, Chrome-trace JSON
// well-formedness, metrics registry under concurrency, and end-to-end
// consistency of a traced parallel solve.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <string_view>
#include <thread>

#include "common/json.hpp"
#include "core/solve.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "obs/trace_export.hpp"

namespace cellnpdp {
namespace {

using obs::Tracer;

// Collapses a snapshot into one event list (tests below run either on a
// single thread or count across all lanes).
std::vector<obs::TraceEvent> all_events(
    const std::vector<obs::ThreadTrace>& threads) {
  std::vector<obs::TraceEvent> out;
  for (const auto& t : threads)
    out.insert(out.end(), t.events.begin(), t.events.end());
  return out;
}

TEST(Trace, SpanNestingAndOrdering) {
  Tracer::instance().start();
  {
    obs::TraceSpan outer("test", "outer");
    {
      obs::TraceSpan inner("test", "inner", 7, 9);
    }
    obs::trace_instant("test", "marker");
  }
  Tracer::instance().stop();

  const auto threads = Tracer::instance().snapshot();
  const auto events = all_events(threads);
  ASSERT_EQ(events.size(), 3u);

  // Spans are recorded at close, so the inner span lands first.
  const auto& inner = events[0];
  const auto& marker = events[1];
  const auto& outer = events[2];
  EXPECT_STREQ(inner.name, "inner");
  EXPECT_STREQ(outer.name, "outer");
  EXPECT_EQ(inner.a0, 7);
  EXPECT_EQ(inner.a1, 9);
  EXPECT_EQ(marker.ph, 'i');

  // Proper nesting: outer starts no later than inner and ends no earlier.
  EXPECT_LE(outer.ts_ns, inner.ts_ns);
  EXPECT_GE(outer.ts_ns + outer.dur_ns, inner.ts_ns + inner.dur_ns);
  // The instant fired between inner close and outer close.
  EXPECT_GE(marker.ts_ns, inner.ts_ns + inner.dur_ns);
  EXPECT_LE(marker.ts_ns, outer.ts_ns + outer.dur_ns);
}

TEST(Trace, DisabledRecordsNothing) {
  Tracer::instance().start();
  Tracer::instance().stop();
  {
    obs::TraceSpan span("test", "ignored");
    obs::trace_instant("test", "ignored");
  }
  EXPECT_TRUE(all_events(Tracer::instance().snapshot()).empty());
}

TEST(Trace, RingOverflowKeepsNewestEvents) {
  Tracer::instance().start(/*per_thread_capacity=*/16);
  for (int i = 0; i < 50; ++i)
    obs::trace_instant("test", "tick", i);
  Tracer::instance().stop();

  const auto threads = Tracer::instance().snapshot();
  ASSERT_EQ(threads.size(), 1u);
  EXPECT_EQ(threads[0].events.size(), 16u);
  EXPECT_EQ(threads[0].dropped, 34u);
  // Chronological order, ending at the newest sample.
  EXPECT_EQ(threads[0].events.front().a0, 34);
  EXPECT_EQ(threads[0].events.back().a0, 49);
}

TEST(Trace, ChromeExportIsValidJson) {
  Tracer::instance().start();
  Tracer::instance().name_this_thread("main");
  {
    obs::TraceSpan s("engine", "middle", 1, 2);
  }
  obs::trace_counter("sched", "ready_depth", 3);
  Tracer::instance().stop();

  std::ostringstream os;
  obs::write_chrome_trace(os, Tracer::instance().snapshot());

  JsonValue root;
  std::string err;
  ASSERT_TRUE(json_parse(os.str(), root, &err)) << err;
  ASSERT_TRUE(root.is_object());
  ASSERT_TRUE(root.has("traceEvents"));
  const auto& events = root.at("traceEvents").arr;
  // process_name + thread_name metadata + span + counter.
  ASSERT_GE(events.size(), 4u);

  bool saw_span = false, saw_counter = false, saw_name = false;
  for (const auto& ev : events) {
    ASSERT_TRUE(ev.is_object());
    ASSERT_TRUE(ev.has("ph"));
    const std::string ph = ev.at("ph").str;
    if (ph == "X") {
      saw_span = true;
      EXPECT_TRUE(ev.at("ts").is_number());
      EXPECT_TRUE(ev.at("dur").is_number());
      EXPECT_GE(ev.at("dur").number, 0.0);
      EXPECT_EQ(ev.at("name").str, "middle");
      EXPECT_EQ(ev.at("args").at("a0").number, 1);
      EXPECT_EQ(ev.at("args").at("a1").number, 2);
    } else if (ph == "C") {
      saw_counter = true;
      EXPECT_EQ(ev.at("args").at("value").number, 3);
    } else if (ph == "M" && ev.at("name").str == "thread_name") {
      saw_name = ev.at("args").at("name").str == "main";
    }
  }
  EXPECT_TRUE(saw_span);
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_name);
}

TEST(Metrics, ConcurrentIncrementsAreExact) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("test.hits");
  obs::Histogram& h = reg.histogram("test.lat");

  constexpr int kThreads = 8, kIter = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIter; ++i) {
        c.add();
        h.observe(t * kIter + i);
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(c.value(), std::int64_t(kThreads) * kIter);
  EXPECT_EQ(h.count(), std::int64_t(kThreads) * kIter);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), std::int64_t(kThreads) * kIter - 1);

  std::ostringstream os;
  reg.write_json(os);
  JsonValue root;
  std::string err;
  ASSERT_TRUE(json_parse(os.str(), root, &err)) << err;
  EXPECT_EQ(root.at("counters").at("test.hits").number,
            double(kThreads) * kIter);
  EXPECT_EQ(root.at("histograms").at("test.lat").at("count").number,
            double(kThreads) * kIter);
}

TEST(Metrics, HistogramQuantiles) {
  obs::Histogram h;
  for (int i = 0; i < 1000; ++i) h.observe(100);  // bucket [64,128)
  h.observe(100000);                              // one outlier
  EXPECT_GE(h.quantile_upper_bound(0.5), 100);
  EXPECT_LT(h.quantile_upper_bound(0.5), 128);
  EXPECT_GE(h.quantile_upper_bound(1.0), 100000 / 2);
}

// End-to-end: a traced parallel solve must produce exactly one completed
// "task" span per scheduling block, distributed over the worker lanes,
// and the busy time the executor reports must equal the summed task-span
// durations (they bracket the same region).
TEST(Trace, ParallelSolveEmitsOneSpanPerSchedulingBlock) {
  NpdpInstance<float> inst;
  inst.n = 256;
  inst.init = [](index_t i, index_t j) {
    return i == j ? 0.0f : float((i * 7 + j * 13) % 100);
  };
  NpdpOptions opts;
  opts.block_side = 32;
  opts.threads = 4;

  Tracer::instance().start();
  SolveStats ss;
  const auto table = solve_blocked_parallel(inst, opts, &ss);
  Tracer::instance().stop();

  const index_t m = ceil_div(inst.n, opts.block_side);
  const index_t expected_tasks = triangle_cells(m);
  EXPECT_EQ(ss.tasks, expected_tasks);

  const auto threads = Tracer::instance().snapshot();
  std::int64_t task_spans = 0, task_ns = 0;
  std::set<std::pair<std::int64_t, std::int64_t>> coords;
  bool saw_middle = false, saw_inner = false, saw_corner = false;
  for (const auto& t : threads) {
    EXPECT_EQ(t.dropped, 0u);
    for (const auto& ev : t.events) {
      if (ev.ph != 'X') continue;
      EXPECT_GE(ev.dur_ns, 0);
      if (std::string_view(ev.name) == "task") {
        ++task_spans;
        task_ns += ev.dur_ns;
        coords.emplace(ev.a0, ev.a1);
      }
      const std::string_view cat(ev.cat);
      saw_middle |= cat == "middle";
      saw_inner |= cat == "inner";
      saw_corner |= cat == "corner";
    }
  }
  // Every scheduling block produced exactly one begin/end pair, with
  // distinct (si,sj) coordinates.
  EXPECT_EQ(task_spans, expected_tasks);
  EXPECT_EQ(static_cast<index_t>(coords.size()), expected_tasks);
  EXPECT_TRUE(saw_middle);
  EXPECT_TRUE(saw_inner);
  EXPECT_TRUE(saw_corner);

  // Executor busy time == summed task-span durations (same bracketed
  // region, measured with separate clock reads — allow small jitter).
  const double busy = ss.busy_total();
  const double spans = double(task_ns) / 1e9;
  EXPECT_NEAR(busy, spans, 0.05 * std::max(busy, spans) + 1e-3);
  // Busy time can never exceed workers * wall.
  EXPECT_LE(busy, ss.wall_seconds * double(ss.worker_busy.size()) * 1.05);
  EXPECT_GT(ss.utilization(), 0.0);
  EXPECT_LE(ss.utilization(), 1.01);

  // The merged engine counters must match a single-threaded reference.
  SolveStats serial;
  const auto ref = solve_blocked_serial(inst, opts, &serial);
  EXPECT_EQ(ss.engine.kernel_calls, serial.engine.kernel_calls);
  EXPECT_EQ(ss.engine.corner_relax, serial.engine.corner_relax);
  EXPECT_EQ(ss.engine.diag_relax, serial.engine.diag_relax);
  EXPECT_EQ(ss.engine.cells_finalized, serial.engine.cells_finalized);

  // And the parallel solve is still correct.
  for (index_t j = 0; j < inst.n; j += 17)
    EXPECT_EQ(table.at(0, j), ref.at(0, j));
}

TEST(Report, UtilizationFoldsBusyIntoMeasuredU) {
  obs::UtilizationReport r;
  r.wall_seconds = 2.0;
  r.worker_busy = {2.0, 1.0, 1.0};  // 4s busy over 3 workers * 2s wall
  EXPECT_DOUBLE_EQ(r.busy_total(), 4.0);
  EXPECT_NEAR(r.measured_utilization(), 4.0 / 6.0, 1e-12);

  ModelParams p;
  p.n1 = 2048;
  p.cores = 3;
  p.n2_override = 64;
  std::ostringstream os;
  obs::print_utilization_report(os, r, p);
  const std::string out = os.str();
  EXPECT_NE(out.find("worker 0"), std::string::npos);
  EXPECT_NE(out.find("measured worker utilization"), std::string::npos);
  EXPECT_NE(out.find("model prediction"), std::string::npos);
}

TEST(Report, PhaseTotalsAggregateByCategory) {
  std::vector<obs::ThreadTrace> threads(2);
  obs::TraceEvent a;
  a.name = "middle";
  a.cat = "middle";
  a.ts_ns = 0;
  a.dur_ns = 100;
  obs::TraceEvent b = a;
  b.cat = "inner";
  b.name = "inner";
  b.dur_ns = 50;
  threads[0].events = {a, b};
  threads[1].events = {a};

  const auto totals = obs::aggregate_phase_totals(threads);
  ASSERT_EQ(totals.size(), 2u);
  for (const auto& pt : totals) {
    if (pt.cat == "middle") {
      EXPECT_EQ(pt.total_ns, 200);
      EXPECT_EQ(pt.spans, 2);
    } else {
      EXPECT_EQ(pt.cat, "inner");
      EXPECT_EQ(pt.total_ns, 50);
      EXPECT_EQ(pt.spans, 1);
    }
  }
}

}  // namespace
}  // namespace cellnpdp
