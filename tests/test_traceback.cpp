// Argmin tracking and traceback tests.
//
// The central property is the *certificate*: for every cell, either
// argmin = -1 and the value equals what the seed/init produces, or
// argmin = k and the value equals exactly the k-relaxation recomputed from
// the final table. This is order-independent, so it holds for every kernel
// and geometry even though different schedules may pick different
// (equally-optimal) k on ties.
#include <gtest/gtest.h>

#include "apps/matrix_chain/matrix_chain.hpp"
#include "common/rng.hpp"
#include "core/reference.hpp"
#include "core/traceback.hpp"
#include "layout/convert.hpp"

namespace cellnpdp {
namespace {

template <class T>
void check_certificate(const NpdpInstance<T>& inst,
                       const NpdpSolution<T>& sol) {
  const bool general = inst.general_mode();
  for (index_t i = 0; i < inst.n; ++i)
    for (index_t j = i + 1; j < inst.n; ++j) {
      const T val = sol.values.at(i, j);
      const index_t k = sol.argmin_at(i, j);
      if (k < 0) {
        // The seed survived.
        T seed = inst.init(i, j);
        if (!general) {
          const T self = seed + inst.init(i, i);
          if (self < seed) seed = self;
        }
        EXPECT_EQ(val, seed) << "(" << i << "," << j << ") leaf";
        continue;
      }
      ASSERT_GT(k, i);
      ASSERT_LT(k, j);
      T cand = sol.values.at(i, k) + sol.values.at(k, j);
      if (inst.ku != nullptr) cand += inst.ku[i] * inst.kv[k] * inst.kw[j];
      if (general && inst.weight) cand += inst.weight(i, j);
      EXPECT_EQ(val, cand) << "(" << i << "," << j << ") via k=" << k;
    }
}

struct ArgCase {
  index_t n;
  index_t bs;
  KernelKind kernel;
};

class ArgminTest : public ::testing::TestWithParam<ArgCase> {};

TEST_P(ArgminTest, PureModeCertificateHolds) {
  const auto& p = GetParam();
  NpdpInstance<float> inst;
  inst.n = p.n;
  inst.init = [](index_t i, index_t j) {
    return random_init_value<float>(17, i, j);
  };
  NpdpOptions opts;
  opts.block_side = p.bs;
  opts.kernel = p.kernel;
  const auto sol = solve_blocked_with_argmin(inst, opts);

  // Values must still be bit-exact vs the golden model.
  const auto ref = solve_reference(inst);
  EXPECT_EQ(max_abs_diff(ref, to_triangular(sol.values)), 0.0);
  check_certificate(inst, sol);
}

TEST_P(ArgminTest, WeightedModeCertificateHolds) {
  const auto& p = GetParam();
  NpdpInstance<double> inst;
  inst.n = p.n;
  inst.init = [](index_t i, index_t j) {
    return i == j ? 0.0 : random_init_value<double>(23, i, j) + 50.0;
  };
  inst.weight = [](index_t i, index_t j) { return double((i + j) % 7); };
  NpdpOptions opts;
  opts.block_side = p.bs;
  opts.kernel = p.kernel;
  const auto sol = solve_blocked_with_argmin(inst, opts);
  const auto ref = solve_reference(inst);
  EXPECT_EQ(max_abs_diff(ref, to_triangular(sol.values)), 0.0);
  check_certificate(inst, sol);
}

TEST_P(ArgminTest, SeparableKTermCertificateHolds) {
  const auto& p = GetParam();
  NpdpInstance<float> inst;
  inst.n = p.n;
  inst.init = [](index_t i, index_t j) {
    return i == j ? 0.0f : random_init_value<float>(29, i, j) + 100.0f;
  };
  aligned_vector<float> u(static_cast<std::size_t>(p.n)),
      v(static_cast<std::size_t>(p.n)), w(static_cast<std::size_t>(p.n));
  SplitMix64 rng(4);
  for (index_t i = 0; i < p.n; ++i) {
    u[static_cast<std::size_t>(i)] = float(rng.next_below(5) + 1);
    v[static_cast<std::size_t>(i)] = float(rng.next_below(5) + 1);
    w[static_cast<std::size_t>(i)] = float(rng.next_below(5) + 1);
  }
  inst.ku = u.data();
  inst.kv = v.data();
  inst.kw = w.data();
  NpdpOptions opts;
  opts.block_side = p.bs;
  opts.kernel = p.kernel;
  const auto sol = solve_blocked_with_argmin(inst, opts);
  const auto ref = solve_reference(inst);
  EXPECT_EQ(max_abs_diff(ref, to_triangular(sol.values)), 0.0);
  check_certificate(inst, sol);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ArgminTest,
    ::testing::Values(ArgCase{8, 8, KernelKind::Native},
                      ArgCase{40, 8, KernelKind::Native},
                      ArgCase{40, 8, KernelKind::Scalar},
                      ArgCase{64, 16, KernelKind::Wide},
                      ArgCase{100, 24, KernelKind::Native},
                      ArgCase{65, 16, KernelKind::Native}),
    [](const auto& info) {
      return "n" + std::to_string(info.param.n) + "_bs" +
             std::to_string(info.param.bs) + "_" +
             std::string(kernel_kind_name(info.param.kernel));
    });

TEST(Traceback, VisitSplitsReconstructsMatrixChainParenthesization) {
  // CLRS 15.2: ((A0 (A1 A2)) ((A3 A4) A5)).
  const std::vector<double> p{30, 35, 15, 5, 10, 20, 25};
  const auto inst = matrix_chain_instance(p);
  NpdpOptions opts;
  opts.block_side = 8;
  const auto sol = solve_blocked_with_argmin(inst, opts);

  EXPECT_EQ(sol.values.at(0, 6), 15125.0);
  // Root split at boundary 3; sub-splits 2 and 5.
  EXPECT_EQ(sol.argmin_at(0, 6), 3);
  EXPECT_EQ(sol.argmin_at(0, 3), 1);  // A0 | (A1 A2)
  EXPECT_EQ(sol.argmin_at(3, 6), 5);

  index_t splits = 0;
  visit_splits(sol, 0, 6, [&](index_t i, index_t k, index_t j) {
    EXPECT_LT(i, k);
    EXPECT_LT(k, j);
    ++splits;
  });
  // A chain of 6 matrices has exactly 5 internal products, but spans of
  // length 1 are seeds: splits occur only on spans >= 2.
  EXPECT_EQ(splits, 5);
}

TEST(Traceback, SplitCostsAddUpForMatrixChain) {
  // Sum of p[i]*p[k]*p[j] over the split tree must equal the total cost.
  SplitMix64 rng(77);
  std::vector<double> p(41);
  for (auto& x : p) x = double(rng.next_below(30) + 1);
  const auto inst = matrix_chain_instance(p);
  NpdpOptions opts;
  opts.block_side = 8;
  const auto sol = solve_blocked_with_argmin(inst, opts);

  double total = 0;
  visit_splits(sol, 0, inst.n - 1, [&](index_t i, index_t k, index_t j) {
    total += p[static_cast<std::size_t>(i)] * p[static_cast<std::size_t>(k)] *
             p[static_cast<std::size_t>(j)];
  });
  EXPECT_NEAR(total, double(sol.values.at(0, inst.n - 1)), 1e-6);
}

TEST(Traceback, ParallelAgreesOnValuesEvenIfTiesDiffer) {
  NpdpInstance<float> inst;
  inst.n = 96;
  inst.init = [](index_t i, index_t j) {
    return random_init_value<float>(3, i, j);
  };
  NpdpOptions opts;
  opts.block_side = 16;
  const auto serial = solve_blocked_with_argmin(inst, opts);
  check_certificate(inst, serial);
}

}  // namespace
}  // namespace cellnpdp
