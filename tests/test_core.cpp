// Core engine correctness: the blocked two-tier engine must reproduce the
// Fig. 1 loop nest bit-for-bit in pure mode, and the documented generalised
// semantics in weighted / separable-k-term mode, for every kernel backend,
// block geometry and thread count.
#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "common/rng.hpp"
#include "core/maxplus.hpp"
#include "core/reference.hpp"
#include "core/solve.hpp"
#include "layout/convert.hpp"

namespace cellnpdp {
namespace {

template <class T>
NpdpInstance<T> random_instance(index_t n, std::uint64_t seed) {
  NpdpInstance<T> inst;
  inst.n = n;
  inst.init = [seed](index_t i, index_t j) {
    return random_init_value<T>(seed, i, j);
  };
  return inst;
}

TEST(Reference, GoldenModelMatchesFig1OnRandomInstances) {
  for (index_t n : {1, 2, 3, 5, 17, 40, 77}) {
    const auto inst = random_instance<double>(n, 7 + n);
    TriangularMatrix<double> fig1(n);
    fig1.fill(inst.init);
    solve_fig1(fig1);
    const auto ref = solve_reference(inst);
    EXPECT_EQ(max_abs_diff(fig1, ref), 0.0) << "n=" << n;
  }
}

TEST(Reference, SelfTermFoldingHoldsForNegativeDiagonals) {
  // The engine folds Fig. 1's k == i relaxation into the seed; that must be
  // equivalent even when diagonal values are negative.
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    const index_t n = 23;
    NpdpInstance<double> inst;
    inst.n = n;
    inst.init = [seed](index_t i, index_t j) {
      SplitMix64 rng(seed * 1000003 + static_cast<std::uint64_t>(i * 131 + j));
      return rng.next_in(-20.0, 80.0);  // diagonals may be negative
    };
    TriangularMatrix<double> fig1(n);
    fig1.fill(inst.init);
    solve_fig1(fig1);
    const auto ref = solve_reference(inst);
    EXPECT_EQ(max_abs_diff(fig1, ref), 0.0) << "seed=" << seed;
  }
}

struct EngineCase {
  index_t n;
  index_t bs;
  KernelKind kernel;

  std::string name() const {
    return "n" + std::to_string(n) + "_bs" + std::to_string(bs) + "_" +
           std::string(kernel_kind_name(kernel));
  }
};

std::vector<EngineCase> engine_cases() {
  std::vector<EngineCase> cases;
  for (KernelKind k :
       {KernelKind::Scalar, KernelKind::Native, KernelKind::Wide}) {
    // Block side must be a multiple of every kernel width in play (<= 8).
    for (auto [n, bs] : std::initializer_list<std::pair<index_t, index_t>>{
             {1, 8},    {7, 8},    {8, 8},   {9, 8},   {16, 8},
             {24, 8},   {31, 8},   {40, 16}, {64, 16}, {65, 16},
             {100, 24}, {128, 32}, {130, 32}}) {
      cases.push_back({n, bs, k});
    }
  }
  return cases;
}

class EngineTest : public ::testing::TestWithParam<EngineCase> {};

TEST_P(EngineTest, PureModeMatchesFig1BitExactFloat) {
  const auto& p = GetParam();
  const auto inst = random_instance<float>(p.n, 1234 + p.n);
  NpdpOptions opts;
  opts.block_side = p.bs;
  opts.kernel = p.kernel;
  const auto blocked = solve_blocked_serial(inst, opts);
  const auto ref = solve_reference(inst);
  EXPECT_EQ(max_abs_diff(ref, to_triangular(blocked)), 0.0);
}

TEST_P(EngineTest, PureModeMatchesFig1BitExactDouble) {
  const auto& p = GetParam();
  const auto inst = random_instance<double>(p.n, 777 + p.n);
  NpdpOptions opts;
  opts.block_side = p.bs;
  opts.kernel = p.kernel;
  const auto blocked = solve_blocked_serial(inst, opts);
  const auto ref = solve_reference(inst);
  EXPECT_EQ(max_abs_diff(ref, to_triangular(blocked)), 0.0);
}

TEST_P(EngineTest, WeightedModeMatchesGoldenModel) {
  const auto& p = GetParam();
  auto inst = random_instance<double>(p.n, 31 + p.n);
  inst.weight = [](index_t i, index_t j) { return double((j - i) % 5) + 0.5; };
  NpdpOptions opts;
  opts.block_side = p.bs;
  opts.kernel = p.kernel;
  const auto blocked = solve_blocked_serial(inst, opts);
  const auto ref = solve_reference(inst);
  EXPECT_EQ(max_abs_diff(ref, to_triangular(blocked)), 0.0);
}

TEST_P(EngineTest, SeparableKTermMatchesGoldenModel) {
  const auto& p = GetParam();
  auto inst = random_instance<float>(p.n, 555 + p.n);
  // Small integer factors: products are exact in float.
  aligned_vector<float> u(static_cast<std::size_t>(p.n)),
      v(static_cast<std::size_t>(p.n)), w(static_cast<std::size_t>(p.n));
  SplitMix64 rng(42);
  for (index_t i = 0; i < p.n; ++i) {
    u[static_cast<std::size_t>(i)] = float(rng.next_below(8) + 1);
    v[static_cast<std::size_t>(i)] = float(rng.next_below(8) + 1);
    w[static_cast<std::size_t>(i)] = float(rng.next_below(8) + 1);
  }
  inst.ku = u.data();
  inst.kv = v.data();
  inst.kw = w.data();
  NpdpOptions opts;
  opts.block_side = p.bs;
  opts.kernel = p.kernel;
  const auto blocked = solve_blocked_serial(inst, opts);
  const auto ref = solve_reference(inst);
  EXPECT_EQ(max_abs_diff(ref, to_triangular(blocked)), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Geometries, EngineTest,
                         ::testing::ValuesIn(engine_cases()),
                         [](const auto& info) { return info.param.name(); });

struct ParallelCase {
  index_t n;
  index_t bs;
  index_t sched;
  std::size_t threads;
};

class ParallelEngineTest : public ::testing::TestWithParam<ParallelCase> {};

TEST_P(ParallelEngineTest, ParallelEqualsSerialBitExact) {
  const auto& p = GetParam();
  const auto inst = random_instance<float>(p.n, 4242);
  NpdpOptions serial_opts;
  serial_opts.block_side = p.bs;
  const auto serial = solve_blocked_serial(inst, serial_opts);

  NpdpOptions par_opts = serial_opts;
  par_opts.sched_side = p.sched;
  par_opts.threads = p.threads;
  for (int rep = 0; rep < 3; ++rep) {
    const auto par = solve_blocked_parallel(inst, par_opts);
    EXPECT_EQ(max_abs_diff(to_triangular(serial), to_triangular(par)), 0.0)
        << "rep=" << rep;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ParallelEngineTest,
    ::testing::Values(ParallelCase{64, 8, 1, 2}, ParallelCase{64, 8, 2, 4},
                      ParallelCase{96, 8, 3, 4}, ParallelCase{100, 16, 1, 7},
                      ParallelCase{160, 16, 2, 8}, ParallelCase{33, 16, 4, 3},
                      ParallelCase{8, 8, 1, 4}),
    [](const auto& info) {
      return "n" + std::to_string(info.param.n) + "_bs" +
             std::to_string(info.param.bs) + "_ss" +
             std::to_string(info.param.sched) + "_t" +
             std::to_string(info.param.threads);
    });

TEST(Engine, RejectsBlockSideNotMultipleOfKernelWidth) {
  auto inst = random_instance<float>(16, 1);
  NpdpOptions opts;
  opts.block_side = 6;  // not a multiple of the width-4 native kernel
  EXPECT_THROW(solve_blocked_serial(inst, opts), std::invalid_argument);
}

TEST(Engine, WeightedModeKeepsDiagonalAtInit) {
  auto inst = random_instance<double>(20, 9);
  inst.weight = [](index_t, index_t) { return 1.0; };
  NpdpOptions opts;
  opts.block_side = 8;
  const auto blocked = solve_blocked_serial(inst, opts);
  for (index_t i = 0; i < 20; ++i)
    EXPECT_EQ(blocked.at(i, i), inst.init(i, i));
}

TEST(Engine, MonotoneProperty_ResultNeverExceedsInit) {
  // min-relaxation can only lower values.
  const auto inst = random_instance<float>(90, 2024);
  NpdpOptions opts;
  opts.block_side = 16;
  const auto out = solve_blocked_serial(inst, opts);
  for (index_t i = 0; i < 90; ++i)
    for (index_t j = i; j < 90; ++j)
      EXPECT_LE(out.at(i, j), inst.init(i, j));
}

TEST(Engine, TriangleInequalityFixpoint) {
  // After the closure, no relaxation can improve any cell:
  // d[i][j] <= d[i][k] + d[k][j] for all i < k < j.
  const auto inst = random_instance<double>(60, 11);
  NpdpOptions opts;
  opts.block_side = 8;
  const auto out = solve_blocked_serial(inst, opts);
  for (index_t i = 0; i < 60; ++i)
    for (index_t j = i + 1; j < 60; ++j)
      for (index_t k = i + 1; k < j; ++k)
        EXPECT_LE(out.at(i, j), out.at(i, k) + out.at(k, j) + 1e-12);
}

TEST(Engine, MaxPlusNegationAdapterIsBitIdenticalOracle) {
  // The retired negate-and-solve adapter stays around exactly for this:
  // float negation is exact, so on every instance the adapter accepts it
  // must agree with the native MaxPlusSemiring instantiation bit for bit.
  for (index_t n : {5, 40, 77}) {
    auto inst = random_instance<float>(n, 2026 + n);
    const auto base = inst.init;
    // Mixed-sign seeds make max and min genuinely different closures.
    inst.init = [base](index_t i, index_t j) {
      return base(i, j) - 50.0f;
    };
    inst.weight = [](index_t i, index_t j) {
      return float((i + j) % 7) - 3.0f;
    };
    NpdpOptions opts;
    opts.block_side = 16;
    const auto native = solve_blocked_maxplus(inst, opts);
    const auto adapter = solve_blocked_maxplus_via_negation(inst, opts);
    EXPECT_EQ(max_abs_diff(to_triangular(native), to_triangular(adapter)),
              0.0)
        << "n=" << n;
  }
}

TEST(SolveStats, UtilizationEdgeCases) {
  // Default-constructed stats (no solve attached) must not divide by zero.
  SolveStats empty;
  EXPECT_EQ(empty.utilization(), 0.0);
  EXPECT_EQ(empty.busy_total(), 0.0);

  // Zero wall time with workers recorded: still well-defined.
  SolveStats zero_wall;
  zero_wall.worker_busy = {0.5, 0.5};
  zero_wall.wall_seconds = 0;
  EXPECT_EQ(zero_wall.utilization(), 0.0);

  // Wall time but an empty worker vector (stats requested, work accounted
  // elsewhere): utilization is 0, not NaN.
  SolveStats no_workers;
  no_workers.wall_seconds = 1.0;
  EXPECT_EQ(no_workers.utilization(), 0.0);

  // Sanity of the formula on a fully-busy two-worker second.
  SolveStats busy;
  busy.wall_seconds = 1.0;
  busy.worker_busy = {1.0, 1.0};
  EXPECT_DOUBLE_EQ(busy.utilization(), 1.0);
}

TEST(SolveStats, ConcurrentParallelSolvesKeepIndependentStats) {
  // Two solve_blocked_parallel calls racing in one process (the serving
  // layer's steady state) must not interleave their stats: each solve's
  // counters must equal those of the same solve run alone, and the values
  // must stay bit-exact.
  const index_t n = 160;
  NpdpOptions opts;
  opts.block_side = 32;
  opts.sched_side = 1;
  opts.threads = 2;

  const auto inst_a = random_instance<float>(n, 31);
  const auto inst_b = random_instance<float>(n, 77);

  SolveStats alone_a, alone_b;
  const auto ref_a = solve_blocked_parallel(inst_a, opts, &alone_a);
  const auto ref_b = solve_blocked_parallel(inst_b, opts, &alone_b);

  SolveStats racing_a, racing_b;
  BlockedTriangularMatrix<float> out_a(0, 1), out_b(0, 1);
  std::thread ta([&] { out_a = solve_blocked_parallel(inst_a, opts, &racing_a); });
  std::thread tb([&] { out_b = solve_blocked_parallel(inst_b, opts, &racing_b); });
  ta.join();
  tb.join();

  for (index_t i = 0; i < n; ++i)
    for (index_t j = i; j < n; ++j) {
      ASSERT_EQ(out_a.at(i, j), ref_a.at(i, j)) << i << "," << j;
      ASSERT_EQ(out_b.at(i, j), ref_b.at(i, j)) << i << "," << j;
    }

  // Work counters are deterministic per instance; a shard leak between the
  // two racing solves would break these equalities.
  EXPECT_EQ(racing_a.tasks, alone_a.tasks);
  EXPECT_EQ(racing_b.tasks, alone_b.tasks);
  EXPECT_EQ(racing_a.engine.kernel_calls, alone_a.engine.kernel_calls);
  EXPECT_EQ(racing_b.engine.kernel_calls, alone_b.engine.kernel_calls);
  EXPECT_EQ(racing_a.engine.cells_finalized, alone_a.engine.cells_finalized);
  EXPECT_EQ(racing_b.engine.cells_finalized, alone_b.engine.cells_finalized);
  EXPECT_EQ(racing_a.engine.scalar_relax(), alone_a.engine.scalar_relax());
  EXPECT_EQ(racing_b.engine.scalar_relax(), alone_b.engine.scalar_relax());
  EXPECT_GT(racing_a.busy_total(), 0.0);
  EXPECT_GT(racing_b.busy_total(), 0.0);
}

}  // namespace
}  // namespace cellnpdp
