// Polygon-triangulation tests: the engine's general k-term path against
// the textbook DP and an exhaustive triangulation enumerator.
#include <gtest/gtest.h>

#include "apps/polygon/triangulation.hpp"
#include "common/rng.hpp"

namespace cellnpdp::polygon {
namespace {

// Exhaustive oracle: enumerate every triangulation of the fan interval
// [i, j] by recursion over the root triangle of edge (i, j).
double brute_best(const std::vector<Point>& pts, index_t i, index_t j) {
  if (j <= i + 1) return 0.0;
  double best = minplus_identity<double>();
  for (index_t k = i + 1; k < j; ++k)
    best = std::min(best, brute_best(pts, i, k) + brute_best(pts, k, j) +
                              perimeter(pts[static_cast<std::size_t>(i)],
                                        pts[static_cast<std::size_t>(k)],
                                        pts[static_cast<std::size_t>(j)]));
  return best;
}

TEST(Polygon, SquareHasTwoEquivalentDiagonals) {
  // Unit square: both diagonals give the same total perimeter.
  const std::vector<Point> sq{{0, 0}, {1, 0}, {1, 1}, {0, 1}};
  NpdpOptions opts;
  opts.block_side = 8;
  const auto r = triangulate(sq, opts);
  ASSERT_EQ(r.triangles.size(), 2u);
  // 2 triangles, each with legs 1,1 and the sqrt(2) diagonal shared.
  EXPECT_NEAR(r.cost, 2 * (2.0 + std::sqrt(2.0)), 1e-12);
}

TEST(Polygon, EngineMatchesTextbookReference) {
  for (index_t n : {3, 5, 12, 40, 90}) {
    const auto pts = random_convex_polygon(n, 100 + static_cast<std::uint64_t>(n));
    NpdpOptions opts;
    opts.block_side = 16;
    const auto r = triangulate(pts, opts);
    EXPECT_NEAR(r.cost, triangulate_reference(pts), 1e-9) << "n=" << n;
  }
}

TEST(Polygon, EngineMatchesExhaustiveEnumeration) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    for (index_t n : {4, 6, 8, 10}) {
      const auto pts = random_convex_polygon(n, seed);
      NpdpOptions opts;
      opts.block_side = 8;
      const auto r = triangulate(pts, opts);
      EXPECT_NEAR(r.cost, brute_best(pts, 0, n - 1), 1e-9)
          << "n=" << n << " seed=" << seed;
    }
  }
}

TEST(Polygon, TracebackProducesAValidTriangulation) {
  const index_t n = 30;
  const auto pts = random_convex_polygon(n, 5);
  NpdpOptions opts;
  opts.block_side = 8;
  const auto r = triangulate(pts, opts);
  // An n-gon triangulation has exactly n-2 triangles whose perimeters sum
  // to the reported cost.
  ASSERT_EQ(r.triangles.size(), static_cast<std::size_t>(n - 2));
  double sum = 0;
  for (const auto& t : r.triangles) {
    EXPECT_LT(t.a, t.b);
    EXPECT_LT(t.b, t.c);
    sum += perimeter(pts[static_cast<std::size_t>(t.a)],
                     pts[static_cast<std::size_t>(t.b)],
                     pts[static_cast<std::size_t>(t.c)]);
  }
  EXPECT_NEAR(sum, r.cost, 1e-9);
}

TEST(Polygon, GeneralAndSeparableKTermsAreMutuallyExclusive) {
  const auto pts = random_convex_polygon(16, 1);
  auto inst = triangulation_instance(pts);
  double u[16] = {};
  inst.ku = inst.kv = inst.kw = u;
  NpdpOptions opts;
  opts.block_side = 8;
  EXPECT_THROW(solve_blocked_serial(inst, opts), std::invalid_argument);
}

TEST(Polygon, DegenerateInputs) {
  NpdpOptions opts;
  opts.block_side = 8;
  EXPECT_EQ(triangulate({}, opts).triangles.size(), 0u);
  EXPECT_EQ(triangulate({{0, 0}, {1, 0}}, opts).triangles.size(), 0u);
  const auto tri = triangulate({{0, 0}, {1, 0}, {0, 1}}, opts);
  ASSERT_EQ(tri.triangles.size(), 1u);
  EXPECT_NEAR(tri.cost, 2.0 + std::sqrt(2.0), 1e-12);
}

}  // namespace
}  // namespace cellnpdp::polygon
