// Weighted CYK parser tests: known languages, exhaustive agreement, parse
// tree validity, SIMD/scalar equivalence.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "apps/cyk/brute_force.hpp"
#include "apps/cyk/cyk.hpp"
#include "common/rng.hpp"

namespace cellnpdp::cyk {
namespace {

TEST(Grammar, ValidationCatchesBadIds) {
  Grammar g;
  g.nonterminals = 2;
  g.terminals = 1;
  g.binary = {{0, 1, 5, 1.0f}};  // right id out of range
  EXPECT_THROW(CykParser{g}, std::invalid_argument);
  Grammar h = balanced_parens_grammar();
  EXPECT_NO_THROW(CykParser{h});
}

TEST(CykLanguages, BalancedParentheses) {
  CykParser parser(balanced_parens_grammar());
  const std::string alphabet = "()";
  for (const char* ok : {"()", "()()", "(())", "(()())", "((()))()"}) {
    EXPECT_TRUE(parser.parse(tokens_from_string(ok, alphabet)).accepted())
        << ok;
  }
  for (const char* bad : {"(", ")", ")(", "(()", "())", "()(", ""}) {
    EXPECT_FALSE(parser.parse(tokens_from_string(bad, alphabet)).accepted())
        << bad;
  }
}

TEST(CykLanguages, AnBn) {
  CykParser parser(anbn_grammar());
  const std::string alphabet = "ab";
  for (const char* ok : {"ab", "aabb", "aaabbb", "aaaabbbb"}) {
    EXPECT_TRUE(parser.parse(tokens_from_string(ok, alphabet)).accepted())
        << ok;
  }
  for (const char* bad : {"a", "b", "ba", "abab", "aab", "abb", "bbaa"}) {
    EXPECT_FALSE(parser.parse(tokens_from_string(bad, alphabet)).accepted())
        << bad;
  }
}

TEST(CykWeights, CostCountsRuleApplications) {
  // With all binary weights 1 and terminal weights 0, the cost is the
  // number of internal nodes: "()" uses S -> L R (1); "(())" uses
  // S -> L R' and R' -> S R plus the inner S -> L R (3).
  CykParser parser(balanced_parens_grammar());
  EXPECT_EQ(parser.parse(tokens_from_string("()", "()")).cost, 1.0f);
  EXPECT_EQ(parser.parse(tokens_from_string("(())", "()")).cost, 3.0f);
  EXPECT_EQ(parser.parse(tokens_from_string("()()", "()")).cost, 3.0f);
}

class CykBruteTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CykBruteTest, MatchesExhaustiveSearchOnRandomGrammars) {
  const std::uint64_t seed = GetParam();
  const Grammar g = random_grammar(4, 3, 10, seed);
  CykParser parser(g);
  SplitMix64 rng(seed * 7 + 1);
  for (int trial = 0; trial < 20; ++trial) {
    const index_t len = 1 + static_cast<index_t>(rng.next_below(7));
    std::vector<int> tokens(static_cast<std::size_t>(len));
    for (auto& t : tokens)
      t = static_cast<int>(rng.next_below(3));
    const auto dp = parser.parse(tokens);
    const Weight brute = brute_force_parse_cost(g, tokens);
    if (brute >= kInfW) {
      EXPECT_FALSE(dp.accepted()) << "seed=" << seed << " trial=" << trial;
    } else {
      ASSERT_TRUE(dp.accepted());
      EXPECT_FLOAT_EQ(dp.cost, brute) << "seed=" << seed << " trial=" << trial;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CykBruteTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST_P(CykBruteTest, InsideAndCountMatchExhaustiveSums) {
  // The (+, *) chart passes against the independent sum over all
  // derivations: exact tree counts (while they fit the float chart) and
  // total inside probability to float accuracy.
  const std::uint64_t seed = GetParam();
  const Grammar g = random_grammar(4, 3, 10, seed);
  CykParser parser(g);
  SplitMix64 rng(seed * 13 + 5);
  for (int trial = 0; trial < 20; ++trial) {
    const index_t len = 1 + static_cast<index_t>(rng.next_below(7));
    std::vector<int> tokens(static_cast<std::size_t>(len));
    for (auto& t : tokens) t = static_cast<int>(rng.next_below(3));

    const double count = parser.count_parses(tokens);
    const double brute_count = brute_force_parse_count(g, tokens);
    if (brute_count < double(1 << 24)) {
      EXPECT_EQ(count, brute_count) << "seed=" << seed << " trial=" << trial;
    } else {
      EXPECT_NEAR(count, brute_count, brute_count * 1e-5)
          << "seed=" << seed << " trial=" << trial;
    }
    // A sentence has a parse tree iff it has a nonzero tree count.
    EXPECT_EQ(parser.parse(tokens).accepted(), brute_count > 0)
        << "seed=" << seed << " trial=" << trial;

    const double inside = parser.inside(tokens);
    const double brute_inside = brute_force_inside(g, tokens);
    EXPECT_NEAR(inside, brute_inside,
                std::max(1e-9, brute_inside * 1e-4))
        << "seed=" << seed << " trial=" << trial;
  }
}

TEST(CykCounting, KnownParseCountsForBalancedParens) {
  // S -> S S is associatively ambiguous: "()()()" splits after the first
  // or the second pair, every other string here has a unique tree.
  CykParser p(balanced_parens_grammar());
  const std::string ab = "()";
  EXPECT_EQ(p.count_parses(tokens_from_string("()", ab)), 1.0);
  EXPECT_EQ(p.count_parses(tokens_from_string("(())", ab)), 1.0);
  EXPECT_EQ(p.count_parses(tokens_from_string("()()", ab)), 1.0);
  EXPECT_EQ(p.count_parses(tokens_from_string("()()()", ab)), 2.0);
  EXPECT_EQ(p.count_parses(tokens_from_string(")(", ab)), 0.0);
  EXPECT_EQ(p.count_parses({}), 0.0);
}

TEST(CykCounting, InsideSumsProbabilityOverAllTrees) {
  // Binary rules weigh 1 (= -log p), terminals 0, so a tree with b binary
  // applications contributes exp(-b): "()" has one tree with 1, "()()()"
  // two trees with 5 each.
  CykParser p(balanced_parens_grammar());
  const std::string ab = "()";
  EXPECT_NEAR(p.inside(tokens_from_string("()", ab)), std::exp(-1.0), 1e-6);
  EXPECT_NEAR(p.inside(tokens_from_string("()()()", ab)),
              2.0 * std::exp(-5.0), 1e-6);
  EXPECT_EQ(p.inside(tokens_from_string(")(", ab)), 0.0);
}

TEST(CykCounting, SimdAndScalarSumChartsAgree) {
  const Grammar g = random_grammar(6, 4, 16, 9);
  CykParser simd(g, {true});
  CykParser scalar(g, {false});
  SplitMix64 rng(31);
  for (int trial = 0; trial < 6; ++trial) {
    const index_t len = 20 + static_cast<index_t>(rng.next_below(40));
    std::vector<int> tokens(static_cast<std::size_t>(len));
    for (auto& t : tokens) t = static_cast<int>(rng.next_below(4));
    // Inside probabilities shrink with length, so float sums are stable;
    // compare SIMD and scalar to relative accuracy (the lane-reduction
    // order differs, so bit-identity is not promised for (+, *)).
    const double a = simd.inside(tokens);
    const double b = scalar.inside(tokens);
    EXPECT_NEAR(a, b, std::max(1e-12, b * 1e-5)) << "trial " << trial;
  }
}

TEST(CykTree, ParseTreeEvaluatesToReportedCost) {
  const Grammar g = universal_grammar(3, 42);
  CykParser parser(g);
  SplitMix64 rng(11);
  int accepted = 0;
  for (int trial = 0; trial < 30; ++trial) {
    const index_t len = 2 + static_cast<index_t>(rng.next_below(12));
    std::vector<int> tokens(static_cast<std::size_t>(len));
    for (auto& t : tokens) t = static_cast<int>(rng.next_below(3));
    const auto r = parser.parse(tokens);
    if (!r.accepted()) continue;
    ++accepted;
    EXPECT_FLOAT_EQ(evaluate_parse_tree(g, tokens, r.nodes), r.cost);
    // Tree shape: root covers the whole span with the start symbol.
    ASSERT_FALSE(r.nodes.empty());
    EXPECT_EQ(r.nodes[0].lhs, g.start);
    EXPECT_EQ(r.nodes[0].i, 0);
    EXPECT_EQ(r.nodes[0].j, len);
    // A binary tree over `len` leaves has exactly 2*len - 1 nodes.
    EXPECT_EQ(r.nodes.size(), static_cast<std::size_t>(2 * len - 1));
  }
  EXPECT_EQ(accepted, 30) << "the universal grammar accepts everything";
}

TEST(CykSimd, ScalarAndSimdSplitsAreBitIdentical) {
  const Grammar g = random_grammar(6, 4, 16, 9);
  CykParser simd(g, {true});
  CykParser scalar(g, {false});
  SplitMix64 rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    const index_t len = 20 + static_cast<index_t>(rng.next_below(60));
    std::vector<int> tokens(static_cast<std::size_t>(len));
    for (auto& t : tokens) t = static_cast<int>(rng.next_below(4));
    const auto a = simd.parse(tokens);
    const auto b = scalar.parse(tokens);
    EXPECT_EQ(a.cost, b.cost) << "trial " << trial;
  }
}

TEST(CykEdge, EmptyInputIsRejected) {
  CykParser parser(balanced_parens_grammar());
  EXPECT_FALSE(parser.parse({}).accepted());
}

}  // namespace
}  // namespace cellnpdp::cyk
