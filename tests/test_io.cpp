// Table serialization tests: bit-exact round trips, header validation,
// truncation handling, and checkpoint/resume of a real solve.
#include <gtest/gtest.h>

#include <cstring>
#include <sstream>

#include "common/rng.hpp"
#include "core/solve.hpp"
#include "io/table_io.hpp"
#include "layout/convert.hpp"

namespace cellnpdp {
namespace {

TEST(TableIo, TriangularRoundTripIsBitExact) {
  for (index_t n : {0, 1, 7, 64, 129}) {
    TriangularMatrix<double> t(n);
    t.fill([](index_t i, index_t j) {
      return random_init_value<double>(4, i, j);
    });
    std::stringstream ss;
    save_table(ss, t);
    const auto back = load_triangular<double>(ss);
    ASSERT_EQ(back.size(), n);
    EXPECT_EQ(max_abs_diff(t, back), 0.0) << "n=" << n;
  }
}

TEST(TableIo, BlockedRoundTripPreservesPaddingInfinities) {
  BlockedTriangularMatrix<float> b(100, 16);  // ragged edge: real padding
  b.fill([](index_t i, index_t j) { return float(i * 3 + j); });
  std::stringstream ss;
  save_table(ss, b);
  const auto back = load_blocked<float>(ss);
  ASSERT_EQ(back.size(), 100);
  ASSERT_EQ(back.block_side(), 16);
  // Compare raw storage (padding included).
  ASSERT_EQ(back.total_cells(), b.total_cells());
  EXPECT_EQ(std::memcmp(back.data(), b.data(),
                        static_cast<std::size_t>(b.total_cells()) *
                            sizeof(float)),
            0);
}

TEST(TableIo, RejectsBadMagicTypeAndTruncation) {
  TriangularMatrix<float> t(8);
  t.fill([](index_t, index_t) { return 1.0f; });
  std::stringstream ss;
  save_table(ss, t);
  const std::string bytes = ss.str();

  {
    std::stringstream bad("XXXX" + bytes.substr(4));
    EXPECT_THROW(load_triangular<float>(bad), std::runtime_error);
  }
  {
    std::stringstream wrong_type(bytes);
    EXPECT_THROW(load_triangular<double>(wrong_type), std::runtime_error);
  }
  {
    std::stringstream wrong_layout(bytes);
    EXPECT_THROW(load_blocked<float>(wrong_layout), std::runtime_error);
  }
  {
    std::stringstream truncated(bytes.substr(0, bytes.size() - 10));
    EXPECT_THROW(load_triangular<float>(truncated), std::runtime_error);
  }
}

TEST(TableIo, CheckpointedSolutionEqualsFreshSolve) {
  NpdpInstance<float> inst;
  inst.n = 96;
  inst.init = [](index_t i, index_t j) {
    return random_init_value<float>(12, i, j);
  };
  NpdpOptions opts;
  opts.block_side = 16;
  const auto solved = solve_blocked_serial(inst, opts);

  std::stringstream ss;
  save_table(ss, solved);
  const auto restored = load_blocked<float>(ss);
  EXPECT_EQ(max_abs_diff(to_triangular(solved), to_triangular(restored)),
            0.0);
}

TEST(TableIo, Int32TablesSerialise) {
  TriangularMatrix<std::int32_t> t(20);
  t.fill([](index_t i, index_t j) {
    return static_cast<std::int32_t>(i * 1000 + j);
  });
  std::stringstream ss;
  save_table(ss, t);
  const auto back = load_triangular<std::int32_t>(ss);
  for (index_t i = 0; i < 20; ++i)
    for (index_t j = i; j < 20; ++j) EXPECT_EQ(back.at(i, j), t.at(i, j));
}

}  // namespace
}  // namespace cellnpdp
