// Cell simulator tests: event core, bus, SPU pipeline model, the work
// model's exact agreement with the real engine, and end-to-end simulation
// properties (functional correctness, determinism, scaling shape).
#include <gtest/gtest.h>

#include <sstream>

#include "cellsim/npdp_sim.hpp"
#include "cellsim/spu_interp.hpp"
#include "cellsim/variants.hpp"
#include "common/rng.hpp"
#include "core/reference.hpp"
#include "core/solve.hpp"
#include "layout/convert.hpp"

namespace cellnpdp {
namespace {

TEST(EventQueue, RunsInTimeThenInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  q.at(2.0, [&] { order.push_back(3); });
  q.at(1.0, [&] { order.push_back(1); });
  q.at(1.0, [&] { order.push_back(2); });  // same instant: insertion order
  q.at(3.0, [&] { order.push_back(4); });
  const double end = q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(end, 3.0);
}

TEST(EventQueue, EventsMayScheduleEvents) {
  EventQueue q;
  int fired = 0;
  q.at(1.0, [&] {
    ++fired;
    q.after(1.0, [&] { ++fired; });
  });
  EXPECT_EQ(q.run(), 2.0);
  EXPECT_EQ(fired, 2);
}

TEST(MemoryBus, SerializesOverlappingTransfers) {
  MemoryBus bus(100.0, 0.5);  // 100 B/s, 0.5 s command latency
  const double d1 = bus.transfer(0.0, 100, 1);  // busy 0..1, done 1.5
  const double d2 = bus.transfer(0.0, 100, 1);  // busy 1..2, done 2.5
  EXPECT_DOUBLE_EQ(d1, 1.5);
  EXPECT_DOUBLE_EQ(d2, 2.5);
  EXPECT_EQ(bus.stats().bytes, 200);
  EXPECT_EQ(bus.stats().commands, 2);
  EXPECT_DOUBLE_EQ(bus.stats().busy_seconds, 2.0);
}

TEST(SpuPipeline, DependentChainPaysFullLatency) {
  SpuProgram p;
  const int a = p.emit(SpuOp::Load);
  const int b = p.emit(SpuOp::Load);
  const int c = p.emit(SpuOp::Add, a, b);
  const int d = p.emit(SpuOp::Add, c, c);
  (void)d;
  const SpuLatencies sp = spu_latencies(Precision::Single);
  // load@0 (ready 6), load@1 (ready 7), add@7 (ready 13), add@13 (ready 19)
  EXPECT_EQ(simulate_spu_cycles(p, sp), 19);
}

TEST(SpuPipeline, DualIssueOnDifferentPipesSingleIssueOnSame) {
  const SpuLatencies sp = spu_latencies(Precision::Single);
  {
    SpuProgram p;  // two independent loads: same pipe, 2 issue cycles
    p.emit(SpuOp::Load);
    p.emit(SpuOp::Load);
    EXPECT_EQ(simulate_spu_cycles(p, sp), 7);  // second load issues at 1
  }
  {
    SpuProgram p;  // load + independent add: different pipes, same cycle
    p.emit(SpuOp::Load);
    const int x = p.emit(SpuOp::Add, -1, -1);
    (void)x;
    EXPECT_EQ(simulate_spu_cycles(p, sp), 6);  // both issue at cycle 0
  }
}

TEST(SpuPipeline, DpfpAddStallsThePipe) {
  const SpuLatencies dp = spu_latencies(Precision::Double);
  SpuProgram p;
  p.emit(SpuOp::Add);
  p.emit(SpuOp::Add);  // independent, same pipe: must wait out the stall
  // first add: issue 0, pipe blocked through cycle 6; second: issue 7,
  // result ready 7+13 = 20.
  EXPECT_EQ(simulate_spu_cycles(p, dp), 20);
}

TEST(SpuPipeline, KernelProgramHasTableIInstructionMix) {
  const SpuProgram p = make_cb_kernel_program(4);
  int counts[6] = {0};
  for (const auto& in : p.instrs) counts[static_cast<int>(in.op)]++;
  EXPECT_EQ(counts[static_cast<int>(SpuOp::Load)], 12);
  EXPECT_EQ(counts[static_cast<int>(SpuOp::Shuffle)], 16);
  EXPECT_EQ(counts[static_cast<int>(SpuOp::Add)], 16);
  EXPECT_EQ(counts[static_cast<int>(SpuOp::Cmp)], 16);
  EXPECT_EQ(counts[static_cast<int>(SpuOp::Sel)], 16);
  EXPECT_EQ(counts[static_cast<int>(SpuOp::Store)], 4);
  EXPECT_EQ(static_cast<int>(p.instrs.size()), 80);
}

TEST(SpuPipeline, SpKernelRetiresNearPaper54Cycles) {
  const SpuLatencies sp = spu_latencies(Precision::Single);
  const int steady = kernel_steady_cycles(4, sp);
  // Lower bound: 48 pipe-0 instructions; the paper reports 54 with its
  // hand schedule. Our model must land in that neighbourhood.
  EXPECT_GE(steady, 48);
  EXPECT_LE(steady, 64);
}

TEST(SpuPipeline, DpKernelIsMuchSlowerPerElement) {
  const SpuLatencies sp = spu_latencies(Precision::Single);
  const SpuLatencies dp = spu_latencies(Precision::Double);
  const double sp_per_relax = double(kernel_steady_cycles(4, sp)) / 64.0;
  const double dp_per_relax = double(kernel_steady_cycles(2, dp)) / 8.0;
  EXPECT_GT(dp_per_relax / sp_per_relax, 3.0)
      << "2 lanes + 13-cycle latency + 6-cycle stall must show";
}

// --- work model vs the real engine -----------------------------------

struct WorkCase {
  index_t n;
  index_t bs;
};

class WorkModelTest : public ::testing::TestWithParam<WorkCase> {};

TEST_P(WorkModelTest, MatchesEngineCountsExactly) {
  const auto [n, bs] = GetParam();
  NpdpInstance<float> inst;
  inst.n = n;
  inst.init = [](index_t i, index_t j) {
    return random_init_value<float>(1, i, j);
  };
  BlockedTriangularMatrix<float> mat(n, bs);
  NpdpOptions opts;
  opts.block_side = bs;
  opts.kernel = KernelKind::Native;  // width 4 == simulated SPE width (SP)
  BlockEngine<float> engine(mat, inst, opts);
  EngineStats stats;
  engine.set_stats(&stats);
  engine.seed();
  const index_t m = engine.blocks_per_side();
  for (index_t bj = 0; bj < m; ++bj)
    for (index_t bi = bj; bi >= 0; --bi) engine.compute_block(bi, bj);

  const BlockWork model = total_work(n, bs, 4);
  EXPECT_EQ(model.kernel_calls, stats.kernel_calls);
  EXPECT_EQ(model.scalar_relax, stats.scalar_relax());
  EXPECT_EQ(model.cells, stats.cells_finalized);
}

INSTANTIATE_TEST_SUITE_P(Geometries, WorkModelTest,
                         ::testing::Values(WorkCase{8, 8}, WorkCase{32, 8},
                                           WorkCase{64, 16}, WorkCase{100, 16},
                                           WorkCase{96, 32},
                                           WorkCase{130, 32}),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param.n) + "_bs" +
                                  std::to_string(info.param.bs);
                         });

// --- end-to-end simulation --------------------------------------------

TEST(CellSim, FunctionalModeProducesTheReferenceAnswer) {
  NpdpInstance<float> inst;
  inst.n = 100;
  inst.init = [](index_t i, index_t j) {
    return random_init_value<float>(77, i, j);
  };
  CellSimOptions sopts;
  sopts.mode = ExecMode::Functional;
  sopts.block_side = 16;
  BlockedTriangularMatrix<float> out(1, 16);
  const auto res = simulate_cellnpdp(inst, qs20(), sopts, &out);
  EXPECT_GT(res.seconds, 0.0);
  const auto ref = solve_reference(inst);
  EXPECT_EQ(max_abs_diff(ref, to_triangular(out)), 0.0);
}

TEST(CellSim, TimingOnlyMatchesFunctionalTiming) {
  NpdpInstance<float> inst;
  inst.n = 128;
  inst.init = [](index_t i, index_t j) {
    return random_init_value<float>(7, i, j);
  };
  CellSimOptions t, f;
  t.mode = ExecMode::TimingOnly;
  f.mode = ExecMode::Functional;
  t.block_side = f.block_side = 32;
  const auto rt = simulate_cellnpdp(inst, qs20(), t);
  const auto rf = simulate_cellnpdp(inst, qs20(), f);
  EXPECT_DOUBLE_EQ(rt.seconds, rf.seconds);
  EXPECT_EQ(rt.dma_bytes_in, rf.dma_bytes_in);
  EXPECT_EQ(rt.dma_commands, rf.dma_commands);
}

TEST(CellSim, DeterministicAcrossRuns) {
  NpdpInstance<float> inst;
  inst.n = 512;
  inst.init = [](index_t, index_t) { return 1.0f; };
  CellSimOptions o;
  o.block_side = 64;
  const auto a = simulate_cellnpdp(inst, qs20(), o);
  const auto b = simulate_cellnpdp(inst, qs20(), o);
  EXPECT_DOUBLE_EQ(a.seconds, b.seconds);
  EXPECT_EQ(a.dma_bytes_in, b.dma_bytes_in);
}

TEST(CellSim, MoreSpesAreFasterUntilBandwidthBound) {
  NpdpInstance<float> inst;
  inst.n = 1024;
  inst.init = [](index_t, index_t) { return 1.0f; };
  CellSimOptions o;
  o.block_side = 64;
  double prev = 1e30;
  for (int spes : {1, 2, 4, 8, 16}) {
    CellConfig cfg = qs20();
    cfg.num_spes = spes;
    const auto r = simulate_cellnpdp(inst, cfg, o);
    EXPECT_LE(r.seconds, prev * 1.001) << spes << " SPEs slower than fewer";
    prev = r.seconds;
  }
}

TEST(CellSim, SmallerBlocksMoveMoreDataAndRunSlower) {
  // Fig. 13's mechanism at the paper's size (n = 4096): halving the block
  // side roughly doubles fetched bytes; tiny blocks lose clearly (DMA
  // efficiency + pipeline drains at 1 SPE, bandwidth saturation at 16).
  // Near the top of the range the surface is nearly flat — the wavefront
  // critical path trades against DMA efficiency — so the strict check is
  // smallest-vs-largest, not pairwise monotonicity.
  NpdpInstance<float> inst;
  inst.n = 4096;
  inst.init = [](index_t, index_t) { return 1.0f; };
  for (int spes : {1, 16}) {
    CellConfig cfg = qs20();
    cfg.num_spes = spes;
    index_t prev_bytes = 0;
    double sec88 = 0.0, sec32 = 0.0;
    for (index_t bs : {88, 64, 44, 32, 16}) {
      CellSimOptions o;
      o.block_side = bs;
      const auto r = simulate_cellnpdp(inst, cfg, o);
      if (prev_bytes > 0) {
        EXPECT_GT(r.dma_bytes_in, prev_bytes) << "bs=" << bs;
      }
      prev_bytes = r.dma_bytes_in;
      if (bs == 88) sec88 = r.seconds;
      if (bs == 32) sec32 = r.seconds;
      if (bs == 16) {
        EXPECT_GT(r.seconds, sec88 * 1.05) << "spes=" << spes;
        EXPECT_GT(r.seconds, sec32 * 1.05) << "spes=" << spes;
      }
    }
  }
}

TEST(CellSim, UtilizationIsRoughlySizeIndependent) {
  // §V's headline: utilization does not depend on the problem size (once
  // the block grid is large enough that the wavefront tail is amortised).
  NpdpInstance<float> a, b;
  a.n = 8192;
  b.n = 16384;
  a.init = b.init = [](index_t, index_t) { return 1.0f; };
  CellSimOptions o;
  o.block_side = 64;
  const auto ra = simulate_cellnpdp(a, qs20(), o);
  const auto rb = simulate_cellnpdp(b, qs20(), o);
  EXPECT_NEAR(ra.utilization, rb.utilization, 0.15 * ra.utilization);
  EXPECT_GT(ra.utilization, 0.60) << "the paper's >60% headline";
  EXPECT_GT(rb.utilization, 0.60);
}

TEST(CellSim, SimdOffIsMuchSlower) {
  NpdpInstance<float> inst;
  inst.n = 512;
  inst.init = [](index_t, index_t) { return 1.0f; };
  CellSimOptions simd, scalar;
  simd.block_side = scalar.block_side = 64;
  scalar.simd = false;
  CellConfig one = qs20();
  one.num_spes = 1;
  const auto rs = simulate_cellnpdp(inst, one, simd);
  const auto rn = simulate_cellnpdp(inst, one, scalar);
  EXPECT_GT(rn.seconds / rs.seconds, 5.0);
}

TEST(Variants, OriginalSpeTrafficFormula) {
  // n = 4: cells (i<j) = 6, relax = sum(j-i) = 10.
  const auto t = original_spe_traffic(4, Precision::Single);
  EXPECT_EQ(t.bytes, 2 * 10 * 4);
  EXPECT_EQ(t.commands, 10 + 6);
}

TEST(Variants, PpeCalibrationInterpolates) {
  // Exactly the calibrated values at the published sizes, monotone between.
  EXPECT_NEAR(ppe_cycles_per_relax(4096, Precision::Single), 199.8, 0.1);
  EXPECT_NEAR(ppe_cycles_per_relax(16384, Precision::Single), 820.8, 0.1);
  const double mid = ppe_cycles_per_relax(6000, Precision::Single);
  EXPECT_GT(mid, 199.8);
  EXPECT_LT(mid, 767.3);
}

TEST(Variants, OriginalVariantsAreOrdersOfMagnitudeSlowerThanSim) {
  const CellConfig cfg = qs20();
  NpdpInstance<float> inst;
  inst.n = 1024;
  inst.init = [](index_t, index_t) { return 1.0f; };
  CellSimOptions o;
  o.block_side = 64;
  const auto r = simulate_cellnpdp(inst, cfg, o);
  EXPECT_GT(time_original_spe(1024, Precision::Single, cfg) / r.seconds, 50.0);
  EXPECT_GT(time_original_ppe(1024, Precision::Single, cfg) / r.seconds, 20.0);
}

TEST(Config, MaxBlockSideRespectsLocalStoreBudget) {
  const CellConfig cfg = qs20();
  const index_t side_sp = cfg.max_block_side(Precision::Single);
  // (256KB - 48KB)/6 = ~35.5KB -> side ~94 for floats.
  EXPECT_GE(side_sp, 88);
  EXPECT_LE(side_sp, 96);
  const index_t side_dp = cfg.max_block_side(Precision::Double);
  EXPECT_LT(side_dp, side_sp);
  // 6 buffers of the returned side must actually fit.
  EXPECT_LE(6 * side_sp * side_sp * 4 + cfg.ls_code_bytes,
            cfg.local_store_bytes + 6 * (2 * side_sp + 1) * 4);
}

TEST(CellSim, PerSpeStatsAreConsistentAndBalanced) {
  // Balance needs enough tasks to amortise the wavefront tail: use the
  // paper's n = 4096 (2080 tasks over 16 SPEs).
  NpdpInstance<float> inst;
  inst.n = 4096;
  inst.init = [](index_t, index_t) { return 1.0f; };
  CellSimOptions o;
  o.block_side = 64;
  const auto r = simulate_cellnpdp(inst, qs20(), o);
  ASSERT_EQ(r.spe_busy.size(), 16u);
  ASSERT_EQ(r.spe_tasks.size(), 16u);

  double busy_sum = 0;
  index_t task_sum = 0;
  for (std::size_t s = 0; s < 16; ++s) {
    busy_sum += r.spe_busy[s];
    task_sum += r.spe_tasks[s];
    EXPECT_GT(r.spe_tasks[s], 0) << "SPE " << s << " never ran a task";
  }
  EXPECT_DOUBLE_EQ(busy_sum, r.spe_busy_seconds);
  EXPECT_EQ(task_sum, r.tasks);

  // The task-queue model must keep reasonable balance (paper: "keeps load
  // balance ... in parallel execution").
  const double mean = busy_sum / 16.0;
  for (std::size_t s = 0; s < 16; ++s)
    EXPECT_NEAR(r.spe_busy[s], mean, 0.30 * mean) << "SPE " << s;
}

// --- functional SPU interpreter ------------------------------------------

TEST(SpuInterp, KernelProgramComputesTheMinPlusRelaxation) {
  // Execute the modeled 80-instruction stream on real tiles and compare
  // against the scalar reference kernel: the timed program must BE the
  // computing-block relaxation.
  const auto kern = make_cb_kernel_semantics(4);
  const index_t stride = 16;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    aligned_vector<float> c0(4 * stride), a(4 * stride), b(4 * stride);
    SplitMix64 rng(seed);
    for (auto& x : c0) x = float(rng.next_in(0, 100));
    for (auto& x : a) x = float(rng.next_in(0, 100));
    for (auto& x : b) x = float(rng.next_in(0, 100));
    auto c1 = c0;
    interpret_spu_kernel(kern, c0.data(), stride, a.data(), stride, b.data(),
                         stride);
    minplus_tile_scalar<float>(c1.data(), stride, a.data(), stride, b.data(),
                               stride, 4);
    for (std::size_t i = 0; i < c0.size(); ++i)
      ASSERT_EQ(c0[i], c1[i]) << "cell " << i << " seed " << seed;
  }
}

TEST(SpuInterp, SemanticsStreamMatchesTimedStream) {
  // The annotated program and the timing program must be the same
  // instruction sequence (op-for-op), so the cycle counts apply to it.
  const auto sem = make_cb_kernel_semantics(4);
  const auto timed = make_cb_kernel_program(4);
  ASSERT_EQ(sem.prog.instrs.size(), timed.instrs.size());
  for (std::size_t i = 0; i < timed.instrs.size(); ++i)
    EXPECT_EQ(static_cast<int>(sem.prog.instrs[i].op),
              static_cast<int>(timed.instrs[i].op))
        << "instruction " << i;
}

TEST(SpuInterp, WorksForWidthTwo) {
  const auto kern = make_cb_kernel_semantics(2);
  const index_t stride = 8;
  aligned_vector<float> c0(2 * stride), a(2 * stride), b(2 * stride);
  SplitMix64 rng(4);
  for (auto& x : c0) x = float(rng.next_in(0, 10));
  for (auto& x : a) x = float(rng.next_in(0, 10));
  for (auto& x : b) x = float(rng.next_in(0, 10));
  auto c1 = c0;
  interpret_spu_kernel(kern, c0.data(), stride, a.data(), stride, b.data(),
                       stride);
  minplus_tile_scalar<float>(c1.data(), stride, a.data(), stride, b.data(),
                             stride, 2);
  for (index_t r = 0; r < 2; ++r)
    for (index_t c = 0; c < 2; ++c)
      EXPECT_EQ(c0[static_cast<std::size_t>(r * stride + c)],
                c1[static_cast<std::size_t>(r * stride + c)]);
}

TEST(CellSimTrace, EventsAreDisjointPerSpeAndCoverBusyTime) {
  NpdpInstance<float> inst;
  inst.n = 1024;
  inst.init = [](index_t, index_t) { return 1.0f; };
  CellSimOptions o;
  o.block_side = 64;
  o.record_trace = true;
  const auto r = simulate_cellnpdp(inst, qs20(), o);

  const index_t m = ceil_div(1024, 64);
  EXPECT_EQ(r.trace.size(), static_cast<std::size_t>(triangle_cells(m)));

  // Per-SPE intervals must not overlap, and their lengths must sum to the
  // per-SPE busy time.
  std::vector<std::vector<TraceEvent>> per_spe(16);
  for (const auto& ev : r.trace) {
    ASSERT_GE(ev.spe, 0);
    ASSERT_LT(ev.spe, 16);
    EXPECT_LT(ev.start, ev.end);
    per_spe[static_cast<std::size_t>(ev.spe)].push_back(ev);
  }
  for (std::size_t s = 0; s < 16; ++s) {
    auto& evs = per_spe[s];
    std::sort(evs.begin(), evs.end(),
              [](const TraceEvent& a, const TraceEvent& b) {
                return a.start < b.start;
              });
    double busy = 0;
    for (std::size_t t = 0; t < evs.size(); ++t) {
      busy += evs[t].end - evs[t].start;
      if (t > 0) {
        EXPECT_GE(evs[t].start, evs[t - 1].end - 1e-12);
      }
    }
    EXPECT_NEAR(busy, r.spe_busy[s], 1e-9);
  }

  // CSV export round-trips the row count.
  std::ostringstream csv;
  r.write_trace_csv(csv);
  index_t lines = -1;  // header
  for (char ch : csv.str())
    if (ch == '\n') ++lines;
  EXPECT_EQ(lines, static_cast<index_t>(r.trace.size()));
}

}  // namespace
}  // namespace cellnpdp
