// Layout module tests: triangular (previous works) and blocked (NDL).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "layout/convert.hpp"

namespace cellnpdp {
namespace {

TEST(Triangular, RowStartAndOffsetsArePackedContiguously) {
  TriangularMatrix<float> t(7);
  index_t expected = 0;
  for (index_t i = 0; i < 7; ++i) {
    EXPECT_EQ(t.row_start(i), expected);
    EXPECT_EQ(t.row_length(i), 7 - i);
    for (index_t j = i; j < 7; ++j) EXPECT_EQ(t.offset(i, j), expected++);
  }
  EXPECT_EQ(t.cell_count(), expected);
  EXPECT_EQ(t.cell_count(), triangle_cells(7));
}

TEST(Triangular, FillRoundTrips) {
  TriangularMatrix<double> t(23);
  t.fill([](index_t i, index_t j) { return double(i * 100 + j); });
  for (index_t i = 0; i < 23; ++i)
    for (index_t j = i; j < 23; ++j) EXPECT_EQ(t.at(i, j), double(i * 100 + j));
}

TEST(Triangular, RowsAreContiguousInMemory) {
  TriangularMatrix<float> t(12);
  for (index_t i = 0; i < 12; ++i)
    for (index_t j = i; j < 12; ++j)
      EXPECT_EQ(&t.at(i, j), t.row(i) + (j - i));
}

struct BlockedCase {
  index_t n;
  index_t bs;
};

class BlockedLayoutTest : public ::testing::TestWithParam<BlockedCase> {};

TEST_P(BlockedLayoutTest, FillRoundTripsAndPaddingIsIdentity) {
  const auto [n, bs] = GetParam();
  BlockedTriangularMatrix<float> b(n, bs);
  b.fill([](index_t i, index_t j) { return float(i * 1000 + j); });

  for (index_t i = 0; i < n; ++i)
    for (index_t j = i; j < n; ++j) EXPECT_EQ(b.at(i, j), float(i * 1000 + j));

  // Every cell not written by fill must still hold the (min,+) identity:
  // below-diagonal parts of diagonal blocks and the ragged edge.
  const index_t m = b.blocks_per_side();
  index_t padding_seen = 0;
  for (index_t bi = 0; bi < m; ++bi)
    for (index_t bj = bi; bj < m; ++bj) {
      const float* blk = b.block(bi, bj);
      for (index_t r = 0; r < bs; ++r)
        for (index_t c = 0; c < bs; ++c) {
          const index_t gi = bi * bs + r, gj = bj * bs + c;
          const bool in_triangle = gi <= gj && gj < n;
          if (!in_triangle) {
            EXPECT_TRUE(is_minplus_identity(blk[r * bs + c]))
                << "block(" << bi << "," << bj << ") cell " << r << "," << c;
            ++padding_seen;
          }
        }
    }
  EXPECT_EQ(padding_seen, b.total_cells() - triangle_cells(n));
}

TEST_P(BlockedLayoutTest, BlocksAreContiguousAndSequentiallyPacked) {
  const auto [n, bs] = GetParam();
  BlockedTriangularMatrix<float> b(n, bs);
  const index_t m = b.blocks_per_side();
  index_t expected_index = 0;
  for (index_t bi = 0; bi < m; ++bi)
    for (index_t bj = bi; bj < m; ++bj) {
      EXPECT_EQ(b.block_index(bi, bj), expected_index);
      EXPECT_EQ(b.block(bi, bj),
                b.data() + expected_index * b.cells_per_block());
      ++expected_index;
    }
  EXPECT_EQ(b.total_cells(), expected_index * b.cells_per_block());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BlockedLayoutTest,
    ::testing::Values(BlockedCase{1, 4}, BlockedCase{4, 4}, BlockedCase{5, 4},
                      BlockedCase{16, 4}, BlockedCase{17, 8},
                      BlockedCase{31, 8}, BlockedCase{64, 16},
                      BlockedCase{70, 16}, BlockedCase{128, 64},
                      BlockedCase{100, 64}),
    [](const auto& info) {
      return "n" + std::to_string(info.param.n) + "_bs" +
             std::to_string(info.param.bs);
    });

TEST(LayoutConvert, RoundTripPreservesEveryCell) {
  for (index_t n : {1, 7, 33, 64, 100}) {
    TriangularMatrix<double> t(n);
    t.fill([](index_t i, index_t j) {
      return random_init_value<double>(42, i, j);
    });
    const auto b = to_blocked(t, 16);
    const auto t2 = to_triangular(b);
    EXPECT_EQ(max_abs_diff(t, t2), 0.0) << "n=" << n;
  }
}

TEST(LayoutConvert, BlockBytesMatchesPaperUnit) {
  // The paper's 32 KB memory block for floats corresponds to side ~90;
  // our power-of-two default 64 gives 16 KB, and 88/96 bracket 32 KB.
  BlockedTriangularMatrix<float> b64(256, 64);
  EXPECT_EQ(b64.block_bytes(), 64 * 64 * 4);
  BlockedTriangularMatrix<float> b88(256, 88);
  EXPECT_EQ(b88.block_bytes(), 88 * 88 * 4);
  EXPECT_NEAR(double(b88.block_bytes()), 32.0 * 1024, 2048);
}

}  // namespace
}  // namespace cellnpdp
