// Extension tests: integer-cell NPDP, local-store capacity enforcement in
// the Cell model, and wavefront-parallel Zuker folding.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "apps/zuker/fold.hpp"
#include "cellsim/npdp_sim.hpp"
#include "common/rng.hpp"
#include "core/reference.hpp"
#include "core/solve.hpp"
#include "core/maxplus.hpp"
#include "core/traceback.hpp"
#include "layout/convert.hpp"

namespace cellnpdp {
namespace {

// --- integer-cell NPDP ---------------------------------------------------

TEST(IntNpdp, IdentityIsSafeSentinel) {
  constexpr std::int32_t id = minplus_identity<std::int32_t>();
  EXPECT_GT(id, 1 << 28);
  EXPECT_TRUE(is_minplus_identity(id));
  // identity + identity must not overflow (padding cells add each other).
  EXPECT_GT(id + id, id);
  EXPECT_FALSE(is_minplus_identity(id / 4));
}

template <class T>
NpdpInstance<T> int_instance(index_t n, std::uint64_t seed) {
  NpdpInstance<T> inst;
  inst.n = n;
  inst.init = [seed](index_t i, index_t j) {
    if (i == j) return T(0);
    SplitMix64 rng(seed ^ (static_cast<std::uint64_t>(i) << 32) ^
                   static_cast<std::uint64_t>(j));
    return static_cast<T>(rng.next_below(1000));
  };
  return inst;
}

struct IntCase {
  index_t n;
  index_t bs;
  KernelKind kernel;
};

class IntEngineTest : public ::testing::TestWithParam<IntCase> {};

TEST_P(IntEngineTest, Int32MatchesGoldenModelExactly) {
  const auto& p = GetParam();
  const auto inst = int_instance<std::int32_t>(p.n, 99 + p.n);
  NpdpOptions opts;
  opts.block_side = p.bs;
  opts.kernel = p.kernel;
  const auto blocked = solve_blocked_serial(inst, opts);
  const auto ref = solve_reference(inst);
  for (index_t i = 0; i < p.n; ++i)
    for (index_t j = i; j < p.n; ++j)
      ASSERT_EQ(blocked.at(i, j), ref.at(i, j)) << i << "," << j;
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, IntEngineTest,
    ::testing::Values(IntCase{16, 8, KernelKind::Native},
                      IntCase{48, 8, KernelKind::Native},
                      IntCase{48, 16, KernelKind::Wide},
                      IntCase{65, 16, KernelKind::Native},
                      IntCase{100, 24, KernelKind::Scalar}),
    [](const auto& info) {
      return "n" + std::to_string(info.param.n) + "_bs" +
             std::to_string(info.param.bs) + "_" +
             std::string(kernel_kind_name(info.param.kernel));
    });

TEST(IntNpdp, ParallelInt32MatchesSerial) {
  const auto inst = int_instance<std::int32_t>(120, 5);
  NpdpOptions serial, par;
  serial.block_side = par.block_side = 16;
  par.threads = 4;
  const auto a = solve_blocked_serial(inst, serial);
  const auto b = solve_blocked_parallel(inst, par);
  for (index_t i = 0; i < 120; ++i)
    for (index_t j = i; j < 120; ++j) ASSERT_EQ(a.at(i, j), b.at(i, j));
}

TEST(IntNpdp, ArgminCertificateHoldsForInt32) {
  const auto inst = int_instance<std::int32_t>(60, 8);
  NpdpOptions opts;
  opts.block_side = 16;
  const auto sol = solve_blocked_with_argmin(inst, opts);
  for (index_t i = 0; i < 60; ++i)
    for (index_t j = i + 1; j < 60; ++j) {
      const index_t k = sol.argmin_at(i, j);
      if (k < 0) {
        EXPECT_EQ(sol.values.at(i, j), inst.init(i, j));
      } else {
        EXPECT_EQ(sol.values.at(i, j),
                  sol.values.at(i, k) + sol.values.at(k, j));
      }
    }
}

// --- local-store enforcement ----------------------------------------------

TEST(CellSimLs, RejectsBlocksThatCannotBeSixBuffered) {
  NpdpInstance<float> inst;
  inst.n = 512;
  inst.init = [](index_t, index_t) { return 1.0f; };
  CellSimOptions o;
  o.block_side = 128;  // 64 KB blocks: 6 x 64 KB + code > 256 KB
  EXPECT_THROW(simulate_cellnpdp(inst, qs20(), o), std::invalid_argument);
  o.enforce_local_store = false;  // hypothetical-machine escape hatch
  EXPECT_NO_THROW(simulate_cellnpdp(inst, qs20(), o));
}

TEST(CellSimLs, SmallLocalStoreMachinesNeedSmallBlocks) {
  // §VI-D: "there may be other processors with smaller local stores".
  NpdpInstance<float> inst;
  inst.n = 512;
  inst.init = [](index_t, index_t) { return 1.0f; };
  CellConfig tiny = cell_with_local_store(64 * 1024);
  CellSimOptions o;
  o.block_side = 64;  // 16 KB blocks: 6 x 16 KB > 64 KB
  EXPECT_THROW(simulate_cellnpdp(inst, tiny, o), std::invalid_argument);
  o.block_side = 32;  // 4 KB blocks fit
  EXPECT_NO_THROW(simulate_cellnpdp(inst, tiny, o));
  EXPECT_GE(tiny.max_block_side(Precision::Single), 32);
  EXPECT_LT(tiny.max_block_side(Precision::Single), 64);
}

TEST(CellSimLs, PaperBlockSizeFitsTheRealLocalStore) {
  NpdpInstance<float> inst;
  inst.n = 512;
  inst.init = [](index_t, index_t) { return 1.0f; };
  CellSimOptions o;
  o.block_side = 88;  // the paper's 32 KB single-precision block
  EXPECT_NO_THROW(simulate_cellnpdp(inst, qs20(), o));
}

// --- parallel Zuker ---------------------------------------------------------

TEST(ParallelZuker, BitIdenticalToSerialAcrossSizes) {
  for (index_t n : {50, 128, 300}) {
    const auto seq = zuker::random_sequence(n, 31 + static_cast<std::uint64_t>(n));
    zuker::ZukerFolder serial({}, {true, 1});
    zuker::ZukerFolder parallel({}, {true, 4});
    const auto a = serial.fold(seq);
    const auto b = parallel.fold(seq);
    EXPECT_EQ(a.mfe, b.mfe) << "n=" << n;
    EXPECT_EQ(a.structure, b.structure) << "n=" << n;
  }
}

TEST(ParallelZuker, RepeatedParallelRunsAreDeterministic) {
  const auto seq = zuker::random_sequence(200, 12);
  zuker::ZukerFolder first({}, {true, 4});
  const auto a = first.fold(seq);
  for (int rep = 0; rep < 3; ++rep) {
    zuker::ZukerFolder again({}, {true, 4});
    const auto b = again.fold(seq);
    ASSERT_EQ(a.mfe, b.mfe);
    ASSERT_EQ(a.structure, b.structure);
  }
}

// --- wavefront-barrier schedules -------------------------------------------

TEST(Wavefront, NativeWavefrontSolverMatchesTaskQueueBitExact) {
  NpdpInstance<float> inst;
  inst.n = 130;
  inst.init = [](index_t i, index_t j) {
    return random_init_value<float>(21, i, j);
  };
  NpdpOptions opts;
  opts.block_side = 16;
  opts.threads = 4;
  const auto queue = solve_blocked_parallel(inst, opts);
  const auto wave = solve_blocked_wavefront(inst, opts);
  for (index_t i = 0; i < inst.n; ++i)
    for (index_t j = i; j < inst.n; ++j)
      ASSERT_EQ(queue.at(i, j), wave.at(i, j)) << i << "," << j;
}

TEST(Wavefront, BarrierScheduleIsSlowerInTheSimulator) {
  // §II-B: the prior works' step-by-step processing underutilises the
  // cores; the task queue overlaps wavefronts. Same work, different
  // makespan.
  NpdpInstance<float> inst;
  inst.n = 4096;
  inst.init = [](index_t, index_t) { return 1.0f; };
  CellSimOptions queue, barrier;
  queue.block_side = barrier.block_side = 64;
  barrier.barrier_wavefront = true;
  const auto rq = simulate_cellnpdp(inst, qs20(), queue);
  const auto rb = simulate_cellnpdp(inst, qs20(), barrier);
  EXPECT_EQ(rq.dma_bytes_in, rb.dma_bytes_in) << "same work either way";
  EXPECT_GT(rb.seconds, rq.seconds * 1.1)
      << "the barrier must cost at least 10% at 16 SPEs";
}

TEST(Wavefront, BarrierScheduleStillComputesCorrectly) {
  NpdpInstance<float> inst;
  inst.n = 128;
  inst.init = [](index_t i, index_t j) {
    return random_init_value<float>(77, i, j);
  };
  CellSimOptions o;
  o.block_side = 16;
  o.mode = ExecMode::Functional;
  o.barrier_wavefront = true;
  BlockedTriangularMatrix<float> out(1, 16);
  simulate_cellnpdp(inst, qs20(), o, &out);
  const auto ref = solve_reference(inst);
  EXPECT_EQ(max_abs_diff(ref, to_triangular(out)), 0.0);
}

// --- max-plus adapter --------------------------------------------------------

TEST(MaxPlus, AdapterMatchesDirectGoldenModel) {
  for (index_t n : {1, 9, 40, 100}) {
    NpdpInstance<double> inst;
    inst.n = n;
    inst.init = [n](index_t i, index_t j) {
      return random_init_value<double>(500 + static_cast<std::uint64_t>(n),
                                       i, j) - 50.0;  // mixed signs
    };
    NpdpOptions opts;
    opts.block_side = 16;
    const auto got = solve_blocked_maxplus(inst, opts);
    const auto ref = solve_reference_maxplus(inst);
    EXPECT_EQ(max_abs_diff(ref, to_triangular(got)), 0.0) << "n=" << n;
  }
}

TEST(MaxPlus, WeightedModeWorksThroughTheAdapter) {
  NpdpInstance<double> inst;
  inst.n = 60;
  inst.init = [](index_t i, index_t j) {
    return i == j ? 0.0 : random_init_value<double>(7, i, j);
  };
  inst.weight = [](index_t i, index_t j) { return double((j - i) % 3); };
  NpdpOptions opts;
  opts.block_side = 8;
  const auto got = solve_blocked_maxplus(inst, opts);
  const auto ref = solve_reference_maxplus(inst);
  EXPECT_EQ(max_abs_diff(ref, to_triangular(got)), 0.0);
}

TEST(MaxPlus, ResultDominatesEveryRelaxation) {
  NpdpInstance<float> inst;
  inst.n = 50;
  inst.init = [](index_t i, index_t j) {
    return random_init_value<float>(31, i, j);
  };
  NpdpOptions opts;
  opts.block_side = 8;
  const auto out = solve_blocked_maxplus(inst, opts);
  for (index_t i = 0; i < 50; ++i)
    for (index_t j = i + 1; j < 50; ++j) {
      EXPECT_GE(out.at(i, j), inst.init(i, j));
      for (index_t k = i + 1; k < j; ++k)
        EXPECT_GE(out.at(i, j), out.at(i, k) + out.at(k, j) - 1e-5f);
    }
}

// The historical negation adapter could not carry a separable k-term
// (u*v*w has no factor-wise sign flip); the native instantiation can.
TEST(MaxPlus, SeparableKTermWorksNatively) {
  NpdpInstance<double> inst;
  inst.n = 40;
  inst.init = [](index_t i, index_t j) {
    return random_init_value<double>(91, i, j) - 50.0;
  };
  std::vector<double> u(40), v(40), w(40);
  SplitMix64 rng(4242);
  for (index_t i = 0; i < 40; ++i) {
    u[i] = rng.next_in(-2.0, 2.0);
    v[i] = rng.next_in(-2.0, 2.0);
    w[i] = rng.next_in(-2.0, 2.0);
  }
  inst.ku = u.data();
  inst.kv = v.data();
  inst.kw = w.data();
  NpdpOptions opts;
  opts.block_side = 8;
  const auto got = solve_blocked_maxplus(inst, opts);
  const auto ref = solve_reference_maxplus(inst);
  EXPECT_EQ(max_abs_diff(ref, to_triangular(got)), 0.0);
}

TEST(MaxPlus, NegationAdapterStillRejectsSeparableKTerm) {
  NpdpInstance<float> inst;
  inst.n = 8;
  inst.init = [](index_t, index_t) { return 0.0f; };
  float u[8] = {};
  inst.ku = inst.kv = inst.kw = u;
  NpdpOptions opts;
  opts.block_side = 8;
  EXPECT_THROW(solve_blocked_maxplus_via_negation(inst, opts),
               std::invalid_argument);
}

}  // namespace
}  // namespace cellnpdp
