// Cache model tests plus the NDL-vs-original DRAM-traffic property that
// Fig. 9(b) rests on.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/reference.hpp"
#include "layout/convert.hpp"
#include "memsim/traced_npdp.hpp"

namespace cellnpdp {
namespace {

TEST(Cache, SequentialAccessMissesOncePerLine) {
  Cache c({1024, 64, 2});
  index_t misses = 0;
  for (std::uint64_t a = 0; a < 512; a += 4)
    if (!c.access(a, false)) ++misses;
  EXPECT_EQ(misses, 512 / 64);
  EXPECT_EQ(c.stats().accesses, 128);
}

TEST(Cache, LruEvictsLeastRecentlyUsedWay) {
  // 2-way, one set of interest: lines mapping to set 0 of a 2-set cache.
  Cache c({256, 64, 2});  // 2 sets
  const std::uint64_t setstride = 2 * 64;
  EXPECT_FALSE(c.access(0 * setstride, false));  // A miss
  EXPECT_FALSE(c.access(1 * setstride, false));  // B miss (same set)
  EXPECT_TRUE(c.access(0 * setstride, false));   // A hit, B becomes LRU
  EXPECT_FALSE(c.access(2 * setstride, false));  // C evicts B
  EXPECT_TRUE(c.access(0 * setstride, false));   // A still resident
  EXPECT_FALSE(c.access(1 * setstride, false));  // B was evicted
}

TEST(Cache, DirtyEvictionCountsWriteback) {
  Cache c({128, 64, 1});  // 2 sets, direct-mapped
  c.access(0, true);      // miss, dirty
  EXPECT_EQ(c.stats().writebacks, 0);
  c.access(128, false);   // same set, evicts dirty line
  EXPECT_EQ(c.stats().writebacks, 1);
  c.access(256, true);    // evicts clean line: no writeback
  EXPECT_EQ(c.stats().writebacks, 1);
  c.flush();              // flushes the dirty 256-line
  EXPECT_EQ(c.stats().writebacks, 2);
}

TEST(Hierarchy, L1HitsNeverReachL2) {
  CacheHierarchy h({1024, 64, 2}, {8192, 64, 4});
  for (int rep = 0; rep < 10; ++rep)
    for (std::uint64_t a = 0; a < 512; a += 64) h.access(a, false);
  // 8 lines: 8 L2 accesses (the initial fills), not 80.
  EXPECT_EQ(h.l2().stats().accesses, 8);
  EXPECT_EQ(h.l1().stats().accesses, 80);
}

TEST(Traffic, TracedOriginalComputesTheRightAnswer) {
  const index_t n = 64;
  auto init = [](index_t i, index_t j) {
    return random_init_value<float>(3, i, j);
  };
  TriangularMatrix<float> d(n);
  d.fill(init);
  CacheHierarchy h({32 * 1024, 64, 8}, {256 * 1024, 64, 8});
  traced_original(d, h);

  TriangularMatrix<float> expect(n);
  expect.fill(init);
  solve_fig1(expect);
  EXPECT_EQ(max_abs_diff(d, expect), 0.0);
}

TEST(Traffic, BlockedLayoutMovesLessDramDataThanOriginal) {
  // The central claim behind Fig. 9: once the table exceeds the cache, the
  // blocked layout's streaming transfers beat the ragged column walks.
  const index_t n = 512;  // triangle = 512KB floats, LLC below = 64KB
  const CacheConfig l1{8 * 1024, 64, 4};
  const CacheConfig llc{64 * 1024, 64, 8};

  TriangularMatrix<float> tri(n);
  tri.fill([](index_t i, index_t j) { return float(i + j); });
  CacheHierarchy h1(l1, llc);
  const auto orig = traced_original(tri, h1);

  BlockedTriangularMatrix<float> blk(n, 64);
  blk.fill([](index_t i, index_t j) { return float(i + j); });
  CacheHierarchy h2(l1, llc);
  const auto ndl = traced_blocked(blk, h2);

  EXPECT_LT(ndl.dram_bytes, orig.dram_bytes);
  EXPECT_GT(double(orig.dram_bytes) / double(ndl.dram_bytes), 2.0)
      << "layout should cut traffic by a clear factor";
}

TEST(Traffic, BlockedTrafficScalesWithBlockCount) {
  // Doubling n roughly 8x's the blocked traffic (cubic in block count).
  const CacheConfig l1{8 * 1024, 64, 4};
  const CacheConfig llc{64 * 1024, 64, 8};
  index_t prev = 0;
  for (index_t n : {256, 512}) {
    BlockedTriangularMatrix<float> blk(n, 64);
    blk.fill([](index_t i, index_t j) { return float(i + j); });
    CacheHierarchy h(l1, llc);
    const auto r = traced_blocked(blk, h);
    if (prev > 0) {
      const double ratio = double(r.dram_bytes) / double(prev);
      EXPECT_GT(ratio, 4.0);
      EXPECT_LT(ratio, 12.0);
    }
    prev = r.dram_bytes;
  }
}

TEST(Hierarchy, ThreeLevelWalkFillsEveryLevel) {
  CacheHierarchy h({1024, 64, 2}, {4096, 64, 4}, {16384, 64, 8});
  EXPECT_EQ(h.level_count(), 3u);
  h.access(0, false);  // cold: misses L1, L2, L3
  EXPECT_EQ(h.l1().stats().misses, 1);
  EXPECT_EQ(h.l2().stats().misses, 1);
  EXPECT_EQ(h.llc().stats().misses, 1);
  h.access(0, false);  // L1 hit: nothing propagates
  EXPECT_EQ(h.l2().stats().accesses, 1);
  EXPECT_EQ(h.dram_bytes(), 64);
}

TEST(Hierarchy, L2CatchesL1CapacityMisses) {
  // Working set bigger than L1 but inside L2: DRAM traffic stays at the
  // compulsory fills even across many passes.
  CacheHierarchy h({1024, 64, 2}, {16 * 1024, 64, 8}, {64 * 1024, 64, 8});
  for (int pass = 0; pass < 4; ++pass)
    for (std::uint64_t a = 0; a < 8 * 1024; a += 64) h.access(a, false);
  EXPECT_EQ(h.llc().stats().misses, 8 * 1024 / 64);  // compulsory only
  EXPECT_GT(h.l1().stats().misses, 3 * (8 * 1024 / 64));  // thrashing L1
}

TEST(Hierarchy, StreamPrefetcherHidesSequentialMisses) {
  CacheHierarchy base({1024, 64, 2}, {8192, 64, 4});
  CacheHierarchy pref({1024, 64, 2}, {8192, 64, 4});
  pref.enable_prefetcher(true);
  for (std::uint64_t a = 0; a < 64 * 1024; a += 64) {
    base.access(a, false);
    pref.access(a, false);
  }
  EXPECT_GT(pref.prefetched_lines(), 0);
  // The streamer locks on after two consecutive lines: nearly every demand
  // miss disappears; total DRAM traffic stays the same — prefetch hides
  // latency, it does not reduce bytes.
  EXPECT_LT(pref.llc().stats().misses,
            base.llc().stats().misses / 10);
  EXPECT_NEAR(double(pref.dram_bytes()), double(base.dram_bytes()),
              0.05 * double(base.dram_bytes()));
}

}  // namespace
}  // namespace cellnpdp
