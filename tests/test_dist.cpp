// Distributed-solve tests: the peer mesh, the distributed dependence
// tracker, and the end-to-end guarantee the subsystem is built around —
// the matrix a peer group assembles over real loopback sockets is
// BYTE-identical to the tier-1 serial solve, for every semiring and
// instance mode. Also covers the failure contract (a peer dying
// mid-solve surfaces a DistError promptly on the survivors, never a
// hang or a silently partial matrix) and the cluster-sim oracle's
// communication-volume prediction against measured wire traffic.
#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "backend/solver_backend.hpp"
#include "cluster/cluster_sim.hpp"
#include "common/rng.hpp"
#include "core/solve.hpp"
#include "dist/dist_tracker.hpp"
#include "dist/in_process.hpp"
#include "net/socket.hpp"
#include "obs/metrics.hpp"

namespace cellnpdp {
namespace {

enum class Mode { Pure, Weighted, Separable };

constexpr SemiringId kAll[] = {SemiringId::MinPlus, SemiringId::MaxPlus,
                               SemiringId::Counting, SemiringId::ViterbiLog};

/// Same canonical (semiring, mode) workload test_semiring uses, so the
/// distributed results are checked on instances the engine suite already
/// pins down. Factor storage must outlive the instance.
template <class T>
NpdpInstance<T> make_instance(SemiringId sr, Mode mode, index_t n,
                              std::uint64_t seed, std::vector<T>* factors) {
  NpdpInstance<T> inst;
  inst.n = n;
  inst.semiring = sr;
  inst.init = [sr, seed](index_t i, index_t j) {
    return semiring_init_value<T>(sr, seed, i, j);
  };
  if (mode == Mode::Weighted) {
    inst.weight = [sr](index_t i, index_t j) {
      const index_t r = (i + 2 * j) % 3;
      switch (sr) {
        case SemiringId::Counting: return T(1 + r);
        case SemiringId::ViterbiLog: return T(-r);
        default: return T(r);
      }
    };
  } else if (mode == Mode::Separable) {
    factors->assign(static_cast<std::size_t>(3 * n), T(0));
    SplitMix64 rng(seed * 31 + 7);
    for (index_t i = 0; i < 3 * n; ++i)
      (*factors)[static_cast<std::size_t>(i)] =
          sr == SemiringId::Counting ? T(1 + rng.next_below(2))
                                     : T(rng.next_in(-2.0, 2.0));
    inst.ku = factors->data();
    inst.kv = factors->data() + n;
    inst.kw = factors->data() + 2 * n;
  }
  return inst;
}

/// Byte-level identity over the whole slab: received blocks are wire
/// copies and owned blocks are computed by the same engine, so even the
/// block padding must match the serial solve exactly.
template <class T>
void expect_bytes_identical(const BlockedTriangularMatrix<T>& ref,
                            const BlockedTriangularMatrix<T>& got,
                            const std::string& what) {
  ASSERT_EQ(ref.total_cells(), got.total_cells()) << what;
  EXPECT_EQ(std::memcmp(ref.data(), got.data(),
                        static_cast<std::size_t>(ref.total_cells()) *
                            sizeof(T)),
            0)
      << what << ": assembled matrix differs from solve_blocked_serial";
}

// --- DistTracker -----------------------------------------------------------

TEST(DistTracker, OwnershipIsBlockColumnCyclic) {
  dist::DistTracker t(5, /*rank=*/1, /*nranks=*/3);
  for (index_t bj = 0; bj < 5; ++bj)
    for (index_t bi = 0; bi <= bj; ++bi)
      EXPECT_EQ(t.owns(bi, bj), bj % 3 == 1) << bi << "," << bj;
  EXPECT_EQ(dist::DistTracker::owner_of(4, 3), 1u);
}

TEST(DistTracker, DiagonalBlocksAreInitiallyReady) {
  dist::DistTracker t(4, 0, 2);
  // Rank 0 owns columns 0 and 2; the owned diagonal blocks (0,0), (2,2)
  // have zero inputs and must be ready before anything is visible.
  const auto ready = t.initial_ready();
  ASSERT_EQ(ready.size(), 2u);
  for (const index_t id : ready) {
    const auto [bi, bj] = t.graph().coords(id);
    EXPECT_EQ(bi, bj);
    EXPECT_TRUE(t.owns(bi, bj));
  }
}

TEST(DistTracker, FullInputSetGatesReadiness) {
  // (0,1) truly depends on (0,0) and (1,1): 2*(bj-bi) = 2 inputs. With
  // only one visible it must NOT fire — the simplified 2-predecessor
  // rule of the serial engines is not valid across async peers.
  dist::DistTracker t(2, 1, 2);  // rank 1 owns column 1: (0,1) and (1,1)
  EXPECT_EQ(t.initial_ready().size(), 1u);    // (1,1) only
  EXPECT_TRUE(t.mark_visible(1, 1).empty());  // (0,1) still waits on (0,0)
  const auto ready = t.mark_visible(0, 0);    // last input arrives
  ASSERT_EQ(ready.size(), 1u);
  const auto [bi, bj] = t.graph().coords(ready[0]);
  EXPECT_EQ(bi, 0);
  EXPECT_EQ(bj, 1);
}

TEST(DistTracker, DuplicateVisibilityIsIgnored) {
  dist::DistTracker t(3, 0, 3);
  (void)t.mark_visible(1, 1);  // first sighting retires inputs
  const auto again = t.mark_visible(1, 1);
  EXPECT_TRUE(again.empty());
  EXPECT_EQ(t.visible(), 1);
}

TEST(DistTracker, AllVisibleAfterEveryBlock) {
  const index_t m = 4;
  dist::DistTracker t(m, 0, 2);
  for (index_t d = 0; d < m; ++d)           // antidiagonal order is one
    for (index_t bi = 0; bi + d < m; ++bi)  // valid completion order
      t.mark_visible(bi, bi + d);
  EXPECT_TRUE(t.all_visible());
  EXPECT_EQ(t.owned_done(), t.owned_total());
}

// --- End-to-end bit-identity ----------------------------------------------

TEST(DistSolve, ThreePeersMatchSerialForEverySemiringAndMode) {
  for (SemiringId sr : kAll) {
    for (Mode mode : {Mode::Pure, Mode::Weighted, Mode::Separable}) {
      std::vector<float> factors;
      const auto inst = make_instance<float>(sr, mode, 150, 11, &factors);
      dist::DistOptions opts;
      opts.tuning.block_side = 32;
      const auto ref = solve_blocked_serial(inst, opts.tuning);
      const auto got = dist::solve_distributed_in_process(inst, opts, 3);
      expect_bytes_identical(ref, got,
                             std::string(semiring_name(sr)) + "/mode" +
                                 std::to_string(static_cast<int>(mode)));
    }
  }
}

TEST(DistSolve, PeerCountsTwoAndFourMatchSerial) {
  std::vector<float> factors;
  const auto inst =
      make_instance<float>(SemiringId::MinPlus, Mode::Pure, 200, 3, &factors);
  dist::DistOptions opts;
  opts.tuning.block_side = 32;
  const auto ref = solve_blocked_serial(inst, opts.tuning);
  for (std::uint32_t peers : {2u, 4u}) {
    const auto got = dist::solve_distributed_in_process(inst, opts, peers);
    expect_bytes_identical(ref, got, std::to_string(peers) + " peers");
  }
}

TEST(DistSolve, MultiThreadedPeersStayBitIdentical) {
  std::vector<float> factors;
  const auto inst = make_instance<float>(SemiringId::ViterbiLog,
                                         Mode::Weighted, 180, 7, &factors);
  dist::DistOptions opts;
  opts.tuning.block_side = 32;
  opts.tuning.threads = 2;  // per-peer compute pool
  const auto ref = solve_blocked_serial(inst, opts.tuning);
  const auto got = dist::solve_distributed_in_process(inst, opts, 3);
  expect_bytes_identical(ref, got, "2 compute threads per peer");
}

TEST(DistSolve, DoublePrecisionMatchesSerial) {
  std::vector<double> factors;
  const auto inst = make_instance<double>(SemiringId::MaxPlus,
                                          Mode::Separable, 130, 5, &factors);
  dist::DistOptions opts;
  opts.tuning.block_side = 32;
  const auto ref = solve_blocked_serial(inst, opts.tuning);
  const auto got = dist::solve_distributed_in_process(inst, opts, 3);
  expect_bytes_identical(ref, got, "double");
}

// --- Stats, counters, and the cluster-sim oracle ---------------------------

TEST(DistSolve, StatsAccountForEveryBlockExactlyOnce) {
  std::vector<float> factors;
  const auto inst =
      make_instance<float>(SemiringId::MinPlus, Mode::Pure, 160, 9, &factors);
  dist::DistOptions opts;
  opts.tuning.block_side = 32;
  std::vector<dist::DistStats> stats;
  (void)dist::solve_distributed_in_process(inst, opts, 3, &stats);
  ASSERT_EQ(stats.size(), 3u);
  const index_t m = ceil_div(inst.n, opts.tuning.block_side);
  const index_t blocks = triangle_cells(m);
  index_t computed = 0;
  for (std::uint32_t r = 0; r < 3; ++r) {
    computed += stats[r].blocks_computed;
    EXPECT_EQ(stats[r].blocks_owned, stats[r].blocks_computed);
    // Every rank ends with the full picture: owned + received = all.
    EXPECT_EQ(stats[r].blocks_computed + stats[r].blocks_received, blocks);
    EXPECT_GT(stats[r].bytes_sent, 0u);
    EXPECT_GT(stats[r].bytes_received, 0u);
  }
  EXPECT_EQ(computed, blocks);
}

TEST(DistSolve, MeasuredCommBytesMatchClusterSimPrediction) {
  // The cluster simulator is the repo's comm-volume oracle: each block is
  // broadcast once to nodes-1 receivers. Measured wire bytes carry frame
  // headers and announces on top of the raw payload, so agreement within
  // 10% is the contract (it lands well under 1% for 16 KiB blocks).
  std::vector<float> factors;
  const auto inst = make_instance<float>(SemiringId::MinPlus, Mode::Pure, 256,
                                         13, &factors);
  for (std::uint32_t peers : {2u, 3u}) {
    ClusterConfig cfg;
    cfg.nodes = static_cast<int>(peers);
    cfg.cores_per_node = 1;
    ClusterSimOptions co;
    co.block_side = 64;
    const auto predicted = simulate_cluster_npdp(inst, cfg, co);

    dist::DistOptions opts;
    opts.tuning.block_side = 64;
    std::vector<dist::DistStats> stats;
    (void)dist::solve_distributed_in_process(inst, opts, peers, &stats);
    std::uint64_t measured = 0;
    for (const auto& s : stats) measured += s.bytes_sent;

    const double rel =
        std::abs(double(measured) - double(predicted.comm_bytes)) /
        double(predicted.comm_bytes);
    EXPECT_LT(rel, 0.10) << peers << " peers: predicted "
                         << predicted.comm_bytes << " measured " << measured;
  }
}

TEST(DistSolve, PeerCountersAreExported) {
  std::vector<float> factors;
  const auto inst =
      make_instance<float>(SemiringId::MinPlus, Mode::Pure, 96, 2, &factors);
  dist::DistOptions opts;
  opts.tuning.block_side = 32;
  const auto before = obs::metrics().snapshot();
  (void)dist::solve_distributed_in_process(inst, opts, 3);
  const auto after = obs::metrics().snapshot();
  EXPECT_GT(after.counter_or("net.peer.blocks_sent", 0),
            before.counter_or("net.peer.blocks_sent", 0));
  EXPECT_GT(after.counter_or("net.peer.blocks_received", 0),
            before.counter_or("net.peer.blocks_received", 0));
  EXPECT_GT(after.counter_or("net.peer.bytes_sent", 0),
            before.counter_or("net.peer.bytes_sent", 0));
  EXPECT_GT(after.counter_or("net.peer.bytes_received", 0),
            before.counter_or("net.peer.bytes_received", 0));
}

// --- The coordinator backend ----------------------------------------------

TEST(DistBackend, RegistersOnceAndMatchesSerial) {
  dist::register_distributed_backend();
  dist::register_distributed_backend();  // idempotent
  const backend::SolverBackend& be = backend::require_backend("distributed");
  EXPECT_TRUE(be.caps().parallel);
  EXPECT_TRUE(be.caps().weighted);

  NpdpInstance<float> inst;
  inst.n = 150;
  inst.init = [](index_t i, index_t j) {
    return semiring_init_value<float>(SemiringId::MinPlus, 21, i, j);
  };
  ExecutionContext ctx;
  ctx.tuning.block_side = 32;
  const backend::BackendResult r = be.solve(inst, ctx);
  ASSERT_EQ(r.status, SolveStatus::Ok);
  ASSERT_NE(r.blocked, nullptr);
  const auto ref = solve_blocked_serial(inst, ctx.tuning);
  expect_bytes_identical(ref, *r.blocked, "distributed backend");
  EXPECT_EQ(r.value, ref.at(0, inst.n - 1));
}

// --- Failure contract ------------------------------------------------------

TEST(DistSolve, HandshakeRefusesMismatchedWorkloads) {
  // Two ranks whose config hashes differ must fail establishment, not
  // assemble garbage. Build the mesh by hand: two listeners, two threads.
  std::vector<dist::PeerEndpoint> eps(2);
  std::vector<net::FdGuard> lfds(2);
  std::string err;
  for (int r = 0; r < 2; ++r) {
    const int fd = net::tcp_listen("127.0.0.1", 0, &err);
    ASSERT_GE(fd, 0) << err;
    lfds[static_cast<std::size_t>(r)].reset(fd);
    eps[static_cast<std::size_t>(r)].port = net::local_port(fd);
  }
  auto hello = [](std::uint32_t rank, std::uint64_t hash) {
    dist::PeerHello h;
    h.rank = rank;
    h.nranks = 2;
    h.config_hash = hash;
    h.n = 64;
    h.block_side = 32;
    h.semiring = 0;
    h.elem_bytes = 4;
    return h;
  };
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (std::uint32_t r = 0; r < 2; ++r) {
    threads.emplace_back([&, r, lfd = std::move(lfds[r])]() mutable {
      dist::PeerGroupOptions go;
      go.connect_timeout_ms = 5000;
      dist::PeerGroup g(r, eps, go);
      g.adopt_listener(lfd.release());
      try {
        g.establish(hello(r, /*hash=*/1000 + r));  // differing fingerprints
      } catch (const dist::DistError&) {
        ++failures;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_GE(failures.load(), 1);
}

TEST(DistSolve, PeerDyingMidSolveIsACleanErrorNotAHang) {
  // Rank 2 completes the handshake, then disappears without sending a
  // single block. Ranks 0 and 1 need its columns, so both must throw
  // DistError (peer death or stall) — promptly, with no assembled matrix
  // passed off as a success.
  std::vector<float> factors;
  const auto inst =
      make_instance<float>(SemiringId::MinPlus, Mode::Pure, 150, 4, &factors);
  std::vector<dist::PeerEndpoint> eps(3);
  std::vector<net::FdGuard> lfds(3);
  std::string err;
  for (int r = 0; r < 3; ++r) {
    const int fd = net::tcp_listen("127.0.0.1", 0, &err);
    ASSERT_GE(fd, 0) << err;
    lfds[static_cast<std::size_t>(r)].reset(fd);
    eps[static_cast<std::size_t>(r)].port = net::local_port(fd);
  }
  dist::DistOptions opts;
  opts.tuning.block_side = 32;
  opts.stall_timeout_ms = 10000;  // backstop; EOF should fire far sooner

  std::vector<std::string> failures(2);
  std::vector<std::thread> threads;
  for (std::uint32_t r = 0; r < 2; ++r) {
    threads.emplace_back([&, r, lfd = std::move(lfds[r])]() mutable {
      BlockedTriangularMatrix<float> mat(inst.n, opts.tuning.block_side,
                                         semiring_zero<float>(inst.semiring));
      dist::PeerGroup group(r, eps, opts.group);
      group.adopt_listener(lfd.release());
      try {
        dist::solve_distributed_into(mat, inst, group, opts);
      } catch (const dist::DistError& e) {
        failures[r] = e.what();
      }
    });
  }
  // The deserting rank: a real handshake, then immediate shutdown.
  threads.emplace_back([&, lfd = std::move(lfds[2])]() mutable {
    dist::PeerHello h;
    h.rank = 2;
    h.nranks = 3;
    h.n = inst.n;
    h.block_side = opts.tuning.block_side;
    h.semiring = static_cast<std::uint8_t>(inst.semiring);
    h.elem_bytes = 4;
    dist::PeerGroup g(2, eps, opts.group);
    g.adopt_listener(lfd.release());
    g.establish(h);
    g.stop();  // closes both connections without a PeerDone
  });
  for (auto& t : threads) t.join();
  for (std::uint32_t r = 0; r < 2; ++r)
    EXPECT_FALSE(failures[r].empty())
        << "rank " << r << " reported success despite a dead peer";
}

TEST(DistSolve, NeedsAtLeastTwoPeers) {
  std::vector<float> factors;
  const auto inst =
      make_instance<float>(SemiringId::MinPlus, Mode::Pure, 64, 1, &factors);
  dist::DistOptions opts;
  EXPECT_THROW(dist::solve_distributed_in_process(inst, opts, 1),
               dist::DistError);
}

TEST(PeerList, ParsesAndValidates) {
  const auto eps =
      dist::parse_peer_list("127.0.0.1:9001,10.0.0.2:9002,localhost:80");
  ASSERT_EQ(eps.size(), 3u);
  EXPECT_EQ(eps[0].host, "127.0.0.1");
  EXPECT_EQ(eps[0].port, 9001);
  EXPECT_EQ(eps[2].host, "localhost");
  EXPECT_EQ(eps[2].port, 80);
  EXPECT_THROW(dist::parse_peer_list("no-port"), dist::DistError);
  EXPECT_THROW(dist::parse_peer_list("h:99999"), dist::DistError);
  EXPECT_THROW(dist::parse_peer_list("h:12x"), dist::DistError);
}

}  // namespace
}  // namespace cellnpdp
