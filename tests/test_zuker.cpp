// Zuker folder tests: exhaustive agreement with the independent
// brute-force evaluator, traceback validity (the reported structure must
// evaluate to exactly the reported MFE), and SIMD/scalar equivalence.
#include <gtest/gtest.h>

#include "apps/zuker/brute_force.hpp"
#include "apps/zuker/fold.hpp"

namespace cellnpdp::zuker {
namespace {

TEST(Sequence, ParseAndPrintRoundTrip) {
  const auto b = parse_sequence("ACGUacguT");
  EXPECT_EQ(bases_to_string(b), "ACGUACGUU");
  EXPECT_THROW(parse_sequence("ACGX"), std::invalid_argument);
}

TEST(Pairing, WatsonCrickAndWobble) {
  EXPECT_TRUE(can_pair(A, U));
  EXPECT_TRUE(can_pair(U, A));
  EXPECT_TRUE(can_pair(G, C));
  EXPECT_TRUE(can_pair(C, G));
  EXPECT_TRUE(can_pair(G, U));
  EXPECT_TRUE(can_pair(U, G));
  EXPECT_FALSE(can_pair(A, C));
  EXPECT_FALSE(can_pair(A, G));
  EXPECT_FALSE(can_pair(C, U));
  EXPECT_FALSE(can_pair(A, A));
}

TEST(EnergyModelTest, HairpinRules) {
  EnergyModel em;
  EXPECT_EQ(em.hairpin(0), kInf);
  EXPECT_EQ(em.hairpin(2), kInf);
  EXPECT_GT(em.hairpin(3), 0.0f);
  EXPECT_GT(em.hairpin(10), em.hairpin(3));  // bigger loops cost more
}

TEST(EnergyModelTest, StacksAreStabilisingAndGcStrongest) {
  EnergyModel em;
  for (int o = 0; o < 6; ++o)
    for (int i = 0; i < 6; ++i)
      EXPECT_LT(em.stack[o][i], 0.0f);
  // GC-on-GC beats AU-on-AU beats GU-on-GU.
  EXPECT_LT(em.stack[2][3], em.stack[0][1]);
  EXPECT_LT(em.stack[0][1], em.stack[4][5]);
}

TEST(EnergyModelTest, TwoLoopRules) {
  EnergyModel em;
  EXPECT_LT(em.two_loop(2, 3, 0, 0), 0.0f);                 // stack
  EXPECT_GT(em.two_loop(2, 3, 1, 0), 0.0f);                 // bulge
  EXPECT_GT(em.two_loop(2, 3, 2, 2), 0.0f);                 // internal
  EXPECT_EQ(em.two_loop(2, 3, 8, 8), kInf);                 // over the cap
}

TEST(Fold, TinyAndEmptySequences) {
  EXPECT_EQ(fold_sequence("").mfe, 0.0f);
  EXPECT_EQ(fold_sequence("A").structure, ".");
  const auto r = fold_sequence("ACGU");
  EXPECT_EQ(r.mfe, 0.0f);  // nothing can pair at distance >= 4
  EXPECT_EQ(r.structure, "....");
}

TEST(Fold, PerfectGcHairpinFolds) {
  // GGGG AAAA CCCC: a 4-stack GC helix with an A4 loop is strongly
  // favourable; expect the outermost pair and a negative MFE.
  // 3 GC-on-GC stacks (3 * -2.9) against a size-4 hairpin penalty (~5.2).
  const auto r = fold_sequence("GGGGAAAACCCC");
  EXPECT_LT(r.mfe, -3.0f);
  EXPECT_GT(r.mfe, -6.0f);
  EXPECT_FALSE(r.pairs.empty());
  EXPECT_EQ(r.structure.size(), 12u);
  // The helix pairs G(i) with C(11-i) for the outer pairs.
  EXPECT_NE(r.structure.find('('), std::string::npos);
}

TEST(Fold, AllAdenineNeverPairs) {
  const auto r = fold_sequence("AAAAAAAAAAAAAAAA");
  EXPECT_EQ(r.mfe, 0.0f);
  EXPECT_TRUE(r.pairs.empty());
}

class BruteForceAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BruteForceAgreement, MfeMatchesExhaustiveSearch) {
  const std::uint64_t seed = GetParam();
  for (index_t n : {8, 10, 12, 13}) {
    const auto seq = random_sequence(n, seed * 100 + static_cast<std::uint64_t>(n));
    EnergyModel em;
    const auto brute = brute_force_fold(seq, em);

    ZukerFolder folder(em, {});
    const auto dp = folder.fold(seq);
    EXPECT_FLOAT_EQ(dp.mfe, brute.mfe)
        << "n=" << n << " seq=" << bases_to_string(seq)
        << " (searched " << brute.structures << " structures)";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BruteForceAgreement,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(Fold, TracebackStructureEvaluatesToReportedMfe) {
  // The dot-bracket certificate must reproduce the MFE under the
  // *independent* evaluator — this validates both traceback and DP.
  EnergyModel em;
  for (std::uint64_t seed : {11u, 22u, 33u, 44u}) {
    for (index_t n : {20, 40, 60}) {
      const auto seq = random_sequence(n, seed);
      ZukerFolder folder(em, {});
      const auto r = folder.fold(seq);
      const Energy e = evaluate_structure(seq, r.pairs, em);
      // The evaluator sums loop energies in tree order, the DP sums them
      // along its recursion: identical up to float re-association.
      EXPECT_NEAR(e, r.mfe, 1e-4) << "n=" << n << " seed=" << seed;
    }
  }
}

TEST(Fold, TracebackIsWellFormed) {
  const auto seq = random_sequence(80, 5);
  ZukerFolder folder;
  const auto r = folder.fold(seq);
  // Balanced brackets, every pair complementary, hairpin distance kept.
  std::vector<index_t> stack;
  for (index_t i = 0; i < static_cast<index_t>(r.structure.size()); ++i) {
    if (r.structure[static_cast<std::size_t>(i)] == '(') stack.push_back(i);
    if (r.structure[static_cast<std::size_t>(i)] == ')') {
      ASSERT_FALSE(stack.empty());
      const index_t j = stack.back();
      stack.pop_back();
      EXPECT_TRUE(can_pair(seq[static_cast<std::size_t>(j)],
                           seq[static_cast<std::size_t>(i)]));
      EXPECT_GE(i - j - 1, kMinHairpin);
    }
  }
  EXPECT_TRUE(stack.empty());
}

TEST(Fold, SimdAndScalarBifurcationsAreBitIdentical) {
  for (index_t n : {30, 64, 100, 150}) {
    const auto seq = random_sequence(n, 7 + static_cast<std::uint64_t>(n));
    ZukerFolder simd(EnergyModel{}, {true});
    ZukerFolder scalar(EnergyModel{}, {false});
    const auto a = simd.fold(seq);
    const auto b = scalar.fold(seq);
    EXPECT_EQ(a.mfe, b.mfe) << "n=" << n;
    EXPECT_EQ(a.structure, b.structure);
    EXPECT_EQ(simd.bifurcation_relaxations(), scalar.bifurcation_relaxations());
  }
}

TEST(Fold, MfeIsMonotoneUnderExtension) {
  // Appending bases can only help (the old structure is still available).
  const auto seq = random_sequence(60, 99);
  EnergyModel em;
  Energy prev = 1.0f;
  for (index_t n : {20, 30, 40, 50, 60}) {
    std::vector<Base> prefix(seq.begin(), seq.begin() + n);
    ZukerFolder folder(em, {});
    const Energy e = folder.fold(prefix).mfe;
    if (prev <= 0.5f) {
      EXPECT_LE(e, prev + 1e-5f) << "n=" << n;
    }
    prev = e;
  }
}

TEST(BruteForce, EvaluatorChargesKnownStructures) {
  EnergyModel em;
  // GGGAAAACCC with pairs (0,9),(1,8),(2,7): two GC stacks + AAAA hairpin.
  const auto seq = parse_sequence("GGGAAAACCC");
  Structure st{{0, 9}, {1, 8}, {2, 7}};
  const Energy expect = em.stack[2][2] + em.stack[2][2] + em.hairpin(4);
  EXPECT_FLOAT_EQ(evaluate_structure(seq, st, em), expect);
}

TEST(BruteForce, EnumerationCountsAreSane) {
  // No pairable bases: exactly one (empty) structure.
  const auto polyA = parse_sequence("AAAAAAAA");
  EXPECT_EQ(enumerate_structures(polyA, 0, 7).size(), 1u);
  // One possible pair: two structures (paired / unpaired).
  const auto one = parse_sequence("GAAAC");
  EXPECT_EQ(enumerate_structures(one, 0, 4).size(), 2u);
}

}  // namespace
}  // namespace cellnpdp::zuker
