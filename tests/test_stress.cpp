// Stress and adversarial-input tests: randomized configuration sweeps,
// degenerate instances, tie-heavy and infinity-laden inputs, and
// concurrency hammering. These are the tests that catch the bugs the
// structured suites are too polite to trigger.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/reference.hpp"
#include "core/solve.hpp"
#include "core/traceback.hpp"
#include "layout/convert.hpp"

namespace cellnpdp {
namespace {

// --- randomized configuration sweep --------------------------------------

TEST(Fuzz, RandomGeometriesAndWorkloadsMatchGoldenModel) {
  SplitMix64 cfg_rng(20260704);
  const KernelKind kinds[] = {KernelKind::Scalar, KernelKind::Native,
                              KernelKind::Wide};
  for (int trial = 0; trial < 60; ++trial) {
    const index_t n = 1 + static_cast<index_t>(cfg_rng.next_below(90));
    const KernelKind kind = kinds[cfg_rng.next_below(3)];
    // Block side: random multiple of 8 in [8, 40].
    const index_t bs = 8 * (1 + static_cast<index_t>(cfg_rng.next_below(5)));
    const std::uint64_t seed = cfg_rng.next_u64();
    const bool negative = cfg_rng.next_below(2) == 0;
    const double inf_frac = cfg_rng.next_below(3) == 0 ? 0.2 : 0.0;

    NpdpInstance<float> inst;
    inst.n = n;
    inst.init = [seed, negative, inf_frac](index_t i, index_t j) {
      SplitMix64 rng(seed ^ (static_cast<std::uint64_t>(i) * 131071u) ^
                     static_cast<std::uint64_t>(j));
      if (i != j && rng.next_unit() < inf_frac)
        return minplus_identity<float>();
      const double lo = negative ? -40.0 : 0.0;
      return static_cast<float>(rng.next_in(lo, 100.0));
    };

    NpdpOptions opts;
    opts.block_side = bs;
    opts.kernel = kind;
    const auto blocked = solve_blocked_serial(inst, opts);
    const auto ref = solve_reference(inst);
    ASSERT_EQ(max_abs_diff(ref, to_triangular(blocked)), 0.0)
        << "trial " << trial << ": n=" << n << " bs=" << bs << " kernel="
        << kernel_kind_name(kind) << (negative ? " negative" : "")
        << " inf_frac=" << inf_frac;
  }
}

TEST(Fuzz, AllTiesStillProduceValidArgminCertificates) {
  // Every off-diagonal cell equal: every k is an argmin; the recorded one
  // must still certify the value.
  NpdpInstance<float> inst;
  inst.n = 48;
  inst.init = [](index_t i, index_t j) { return i == j ? 0.0f : 7.0f; };
  NpdpOptions opts;
  opts.block_side = 16;
  const auto sol = solve_blocked_with_argmin(inst, opts);
  for (index_t i = 0; i < 48; ++i)
    for (index_t j = i + 1; j < 48; ++j) {
      EXPECT_EQ(sol.values.at(i, j), 7.0f);  // 7 can never be beaten (7+7>7)
      EXPECT_EQ(sol.argmin_at(i, j), -1);
    }
}

TEST(Fuzz, AllInfinityInstanceStaysInfinity) {
  NpdpInstance<float> inst;
  inst.n = 40;
  inst.init = [](index_t i, index_t j) {
    return i == j ? 0.0f : minplus_identity<float>();
  };
  NpdpOptions opts;
  opts.block_side = 8;
  const auto out = solve_blocked_serial(inst, opts);
  for (index_t i = 0; i < 40; ++i)
    for (index_t j = i + 1; j < 40; ++j)
      EXPECT_TRUE(is_minplus_identity(out.at(i, j)));
}

TEST(Fuzz, ZeroEverywhereIsAFixpoint) {
  NpdpInstance<double> inst;
  inst.n = 33;
  inst.init = [](index_t, index_t) { return 0.0; };
  NpdpOptions opts;
  opts.block_side = 8;
  const auto out = solve_blocked_serial(inst, opts);
  for (index_t i = 0; i < 33; ++i)
    for (index_t j = i; j < 33; ++j) EXPECT_EQ(out.at(i, j), 0.0);
}

TEST(Fuzz, TinySizesEveryBlockGeometry) {
  // n in [0, 12] across block sides: the padding / ragged-edge gauntlet.
  for (index_t n = 0; n <= 12; ++n) {
    for (index_t bs : {8, 16, 24}) {
      NpdpInstance<float> inst;
      inst.n = n;
      inst.init = [](index_t i, index_t j) {
        return random_init_value<float>(1, i, j);
      };
      NpdpOptions opts;
      opts.block_side = bs;
      const auto out = solve_blocked_serial(inst, opts);
      if (n == 0) continue;
      const auto ref = solve_reference(inst);
      ASSERT_EQ(max_abs_diff(ref, to_triangular(out)), 0.0)
          << "n=" << n << " bs=" << bs;
    }
  }
}

// --- concurrency hammering -------------------------------------------------

TEST(Stress, ParallelSolverUnderRepeatedContention) {
  NpdpInstance<float> inst;
  inst.n = 128;
  inst.init = [](index_t i, index_t j) {
    return random_init_value<float>(55, i, j);
  };
  NpdpOptions serial;
  serial.block_side = 8;  // 16x16 block grid: lots of tasks
  const auto expect = solve_blocked_serial(inst, serial);
  for (int rep = 0; rep < 10; ++rep) {
    NpdpOptions par = serial;
    par.threads = 1 + static_cast<std::size_t>(rep % 8);
    par.sched_side = 1 + rep % 3;
    const auto got = solve_blocked_parallel(inst, par);
    ASSERT_EQ(max_abs_diff(to_triangular(expect), to_triangular(got)), 0.0)
        << "rep " << rep;
  }
}

TEST(Stress, ThreadPoolNestedSubmitsAndWaits) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int outer = 0; outer < 50; ++outer) {
    pool.submit([&] {
      ++count;
      for (int inner = 0; inner < 4; ++inner)
        pool.submit([&] { ++count; });
    });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 50 * 5);
}

TEST(Stress, ThreadPoolManyTinyParallelFors) {
  ThreadPool pool(3);
  for (int rep = 0; rep < 100; ++rep) {
    std::atomic<std::size_t> sum{0};
    pool.parallel_for(0, static_cast<std::size_t>(rep + 1),
                      [&](std::size_t i) { sum += i + 1; });
    EXPECT_EQ(sum.load(),
              static_cast<std::size_t>(rep + 1) * (rep + 2) / 2);
  }
}

// --- input validation -------------------------------------------------------

TEST(Validation, EmptyInstanceIsHarmless) {
  NpdpInstance<float> inst;
  inst.n = 0;
  inst.init = [](index_t, index_t) { return 0.0f; };
  NpdpOptions opts;
  opts.block_side = 8;
  const auto out = solve_blocked(inst, opts);
  EXPECT_EQ(out.size(), 0);
  EXPECT_EQ(out.blocks_per_side(), 0);
}

TEST(Validation, SingleCellInstance) {
  NpdpInstance<float> inst;
  inst.n = 1;
  inst.init = [](index_t, index_t) { return 3.5f; };
  NpdpOptions opts;
  opts.block_side = 8;
  const auto out = solve_blocked(inst, opts);
  EXPECT_EQ(out.at(0, 0), 3.5f);
}

TEST(Validation, MismatchedArgminGeometryThrows) {
  NpdpInstance<float> inst;
  inst.n = 32;
  inst.init = [](index_t, index_t) { return 1.0f; };
  NpdpOptions opts;
  opts.block_side = 16;
  BlockedTriangularMatrix<float> values(32, 16);
  BlockedTriangularMatrix<float> wrong(32, 8);
  BlockEngine<float> engine(values, inst, opts);
  EXPECT_THROW(engine.set_argmin(&wrong), std::invalid_argument);
}

}  // namespace
}  // namespace cellnpdp
