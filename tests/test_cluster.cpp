// Distributed-cluster simulation tests.
#include <gtest/gtest.h>

#include "cluster/cluster_sim.hpp"
#include "common/rng.hpp"
#include "core/reference.hpp"
#include "layout/convert.hpp"

namespace cellnpdp {
namespace {

NpdpInstance<float> unit_instance(index_t n) {
  NpdpInstance<float> inst;
  inst.n = n;
  inst.init = [](index_t, index_t) { return 1.0f; };
  return inst;
}

TEST(Cluster, FunctionalModeProducesTheReferenceAnswer) {
  NpdpInstance<float> inst;
  inst.n = 160;
  inst.init = [](index_t i, index_t j) {
    return random_init_value<float>(808, i, j);
  };
  ClusterConfig cfg;
  cfg.nodes = 4;
  ClusterSimOptions o;
  o.block_side = 16;
  o.functional = true;
  BlockedTriangularMatrix<float> out(1, 16);
  const auto r = simulate_cluster_npdp(inst, cfg, o, &out);
  EXPECT_GT(r.seconds, 0.0);
  const auto ref = solve_reference(inst);
  EXPECT_EQ(max_abs_diff(ref, to_triangular(out)), 0.0);
}

TEST(Cluster, SingleNodeHasNoCommunication) {
  ClusterConfig cfg;
  cfg.nodes = 1;
  ClusterSimOptions o;
  o.block_side = 64;
  const auto r = simulate_cluster_npdp(unit_instance(1024), cfg, o);
  EXPECT_EQ(r.comm_bytes, 0);
  EXPECT_EQ(r.messages, 0);
  EXPECT_GT(r.seconds, 0.0);
}

TEST(Cluster, CommunicationVolumeMatchesClosedForm) {
  // Every block is broadcast once to nodes-1 receivers.
  ClusterConfig cfg;
  cfg.nodes = 4;
  ClusterSimOptions o;
  o.block_side = 64;
  const index_t n = 1024;
  const auto r = simulate_cluster_npdp(unit_instance(n), cfg, o);
  const index_t m = ceil_div(n, 64);
  const index_t blocks = triangle_cells(m);
  EXPECT_EQ(r.blocks, blocks);
  EXPECT_EQ(r.comm_bytes, blocks * 64 * 64 * 4 * (cfg.nodes - 1));
  EXPECT_EQ(r.messages, blocks * (cfg.nodes - 1));
}

TEST(Cluster, PerNodeCommSecondsArePopulatedAndSumToTotal) {
  ClusterConfig cfg;
  cfg.nodes = 4;
  ClusterSimOptions o;
  o.block_side = 64;
  const auto r = simulate_cluster_npdp(unit_instance(1024), cfg, o);
  ASSERT_EQ(r.node_comm.size(), static_cast<std::size_t>(cfg.nodes));
  double sum = 0.0;
  for (const double s : r.node_comm) {
    EXPECT_GT(s, 0.0);  // every node owns columns, so every NIC is busy
    sum += s;
  }
  EXPECT_DOUBLE_EQ(sum, r.comm_seconds_total);
  // NIC busy time is bounded below by pure serialization of the bytes a
  // node actually sent, and the whole run is at least as long as the
  // busiest NIC.
  EXPECT_GE(r.comm_seconds_total,
            double(r.comm_bytes) / cfg.link_bandwidth * 0.99);
  for (const double s : r.node_comm) EXPECT_LE(s, r.seconds);
}

TEST(Cluster, SingleNodeHasNoCommSeconds) {
  ClusterConfig cfg;
  cfg.nodes = 1;
  ClusterSimOptions o;
  o.block_side = 64;
  const auto r = simulate_cluster_npdp(unit_instance(512), cfg, o);
  ASSERT_EQ(r.node_comm.size(), 1u);
  EXPECT_EQ(r.node_comm[0], 0.0);
  EXPECT_EQ(r.comm_seconds_total, 0.0);
}

TEST(Cluster, DeterministicAcrossRuns) {
  ClusterConfig cfg;
  cfg.nodes = 8;
  ClusterSimOptions o;
  o.block_side = 32;
  const auto a = simulate_cluster_npdp(unit_instance(512), cfg, o);
  const auto b = simulate_cluster_npdp(unit_instance(512), cfg, o);
  EXPECT_DOUBLE_EQ(a.seconds, b.seconds);
  EXPECT_EQ(a.comm_bytes, b.comm_bytes);
}

TEST(Cluster, MoreNodesHelpUntilCommunicationDominates) {
  // With a fat network, scaling holds; with a thin one it collapses —
  // exactly the "communication overhead cannot be neglected" regime.
  ClusterSimOptions o;
  o.block_side = 64;
  const auto inst = unit_instance(4096);

  double prev = 1e30;
  for (int nodes : {1, 2, 4, 8}) {
    ClusterConfig fat;
    fat.nodes = nodes;
    fat.link_bandwidth = 25e9;
    fat.link_latency = 1e-6;
    const auto r = simulate_cluster_npdp(inst, fat, o);
    EXPECT_LT(r.seconds, prev * 1.02) << nodes << " fat nodes";
    prev = r.seconds;
  }

  ClusterConfig thin1, thin8;
  thin1.nodes = 1;
  thin8.nodes = 8;
  thin1.link_bandwidth = thin8.link_bandwidth = 50e6;  // 50 MB/s
  thin1.link_latency = thin8.link_latency = 1e-3;      // 1 ms
  const auto r1 = simulate_cluster_npdp(inst, thin1, o);
  const auto r8 = simulate_cluster_npdp(inst, thin8, o);
  EXPECT_GT(r8.seconds, r1.seconds)
      << "a thin network must make 8 nodes slower than 1";
}

TEST(Cluster, EfficiencyDropsWithNodeCount) {
  ClusterSimOptions o;
  o.block_side = 64;
  const auto inst = unit_instance(2048);
  double prev = 2.0;
  for (int nodes : {1, 2, 4, 8}) {
    ClusterConfig cfg;
    cfg.nodes = nodes;
    const auto r = simulate_cluster_npdp(inst, cfg, o);
    EXPECT_LE(r.efficiency, prev + 1e-9) << nodes;
    EXPECT_GT(r.efficiency, 0.0);
    prev = r.efficiency;
  }
}

TEST(Cluster, TreeBroadcastBeatsSequentialSends) {
  ClusterSimOptions o;
  o.block_side = 64;
  const auto inst = unit_instance(2048);
  ClusterConfig tree, seq;
  tree.nodes = seq.nodes = 16;
  tree.link_bandwidth = seq.link_bandwidth = 1e9;
  tree.tree_broadcast = true;
  seq.tree_broadcast = false;
  const auto rt = simulate_cluster_npdp(inst, tree, o);
  const auto rs = simulate_cluster_npdp(inst, seq, o);
  EXPECT_LE(rt.seconds, rs.seconds * 1.001);
}

TEST(Cluster, RejectsZeroNodes) {
  ClusterConfig cfg;
  cfg.nodes = 0;
  ClusterSimOptions o;
  EXPECT_THROW(simulate_cluster_npdp(unit_instance(64), cfg, o),
               std::invalid_argument);
}

}  // namespace
}  // namespace cellnpdp
