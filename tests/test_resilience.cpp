// The fault-injection harness and the self-healing pipeline built on it.
//
// Contracts under test (docs/resilience.md): a seeded FaultPlan fires
// deterministically and logs every firing for replay; per-block retry and
// checksum repair make the resilient solve bit-identical to a clean run
// under injected throws and corruption; the executor re-seeds and re-runs
// failed tasks (and rethrows when retry is off, instead of hanging); the
// thread pool aggregates every job exception and self-heals worker deaths;
// the circuit breaker walks closed -> open -> half-open -> closed; the
// serve layer retries, degrades onto a fallback backend, sheds with
// RetryAfter, and hedges stragglers without ever double-answering.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <future>
#include <sstream>
#include <thread>
#include <vector>

#include "backend/solver_backend.hpp"
#include "common/fault_hook.hpp"
#include "common/retry.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/solve.hpp"
#include "obs/metrics.hpp"
#include "resilience/checksum.hpp"
#include "resilience/circuit_breaker.hpp"
#include "resilience/fault_injector.hpp"
#include "resilience/hedge.hpp"
#include "resilience/resilient_solve.hpp"
#include "serve/service.hpp"

namespace cellnpdp {
namespace {

using namespace std::chrono;
using resilience::BreakerPolicy;
using resilience::BreakerState;
using resilience::CircuitBreaker;
using resilience::FaultInjectionScope;
using resilience::FaultInjector;
using resilience::FaultPlan;

NpdpInstance<float> pure_instance(index_t n, std::uint64_t seed = 11) {
  NpdpInstance<float> inst;
  inst.n = n;
  inst.init = [seed](index_t i, index_t j) {
    return random_init_value<float>(seed, i, j);
  };
  return inst;
}

/// General mode (weight set): finalize_cell is NOT idempotent here, so
/// recovery must re-seed before re-running — the regression this guards.
NpdpInstance<float> general_instance(index_t n, std::uint64_t seed = 13) {
  NpdpInstance<float> inst = pure_instance(n, seed);
  inst.weight = [](index_t i, index_t j) {
    return 0.25f * float((i + j) % 7);
  };
  return inst;
}

bool tables_identical(const BlockedTriangularMatrix<float>& a,
                      const BlockedTriangularMatrix<float>& b) {
  return a.size() == b.size() && a.block_side() == b.block_side() &&
         std::memcmp(a.data(), b.data(),
                     static_cast<std::size_t>(a.total_cells()) *
                         sizeof(float)) == 0;
}

// --- FaultPlan parsing ----------------------------------------------------

TEST(FaultPlan, ParsesJsonAndRejectsMalformedPlans) {
  FaultPlan plan;
  std::string err;
  ASSERT_TRUE(resilience::fault_plan_from_json_text(
      R"({"seed": 42, "faults": [
            {"site": "task-throw", "rate": 0.01},
            {"site": "block-corrupt", "rate": 0.001, "max_fires": 4},
            {"site": "task-stall", "rate": 1.0, "max_fires": 1,
             "stall_ms": 300}]})",
      &plan, &err))
      << err;
  EXPECT_EQ(plan.seed, 42u);
  ASSERT_EQ(plan.rules.size(), 3u);
  const resilience::FaultRule* corrupt =
      plan.rule_for(FaultSite::BlockCorrupt);
  ASSERT_NE(corrupt, nullptr);
  EXPECT_DOUBLE_EQ(corrupt->rate, 0.001);
  EXPECT_EQ(corrupt->max_fires, 4);
  ASSERT_NE(plan.rule_for(FaultSite::TaskStall), nullptr);
  EXPECT_EQ(plan.rule_for(FaultSite::TaskStall)->stall_ms, 300);
  EXPECT_EQ(plan.rule_for(FaultSite::WorkerDeath), nullptr);

  for (const char* bad : {
           "not json",
           R"([1, 2])",
           R"({"faults": [{"rate": 0.5}]})",
           R"({"faults": [{"site": "martian-ray", "rate": 0.5}]})",
           R"({"faults": [{"site": "task-throw", "rate": 1.5}]})",
           R"({"faults": [{"site": "task-throw"}, {"site": "task-throw"}]})",
       }) {
    err.clear();
    EXPECT_FALSE(resilience::fault_plan_from_json_text(bad, &plan, &err))
        << bad;
    EXPECT_FALSE(err.empty()) << bad;
  }
}

TEST(FaultPlan, SiteNamesRoundTrip) {
  for (int s = 0; s < kFaultSiteCount; ++s) {
    const auto site = static_cast<FaultSite>(s);
    FaultSite back = FaultSite::TaskThrow;
    ASSERT_TRUE(resilience::fault_site_from_name(fault_site_name(site), &back));
    EXPECT_EQ(back, site);
  }
  FaultSite out;
  EXPECT_FALSE(resilience::fault_site_from_name("gamma-burst", &out));
}

// --- deterministic injection ---------------------------------------------

TEST(FaultInjector, SamePlanSameCallSequenceFiresIdentically) {
  const FaultPlan plan = FaultPlan::single(FaultSite::TaskThrow, 0.2,
                                           /*max_fires=*/-1, /*seed=*/7);
  FaultInjector a(plan), b(plan);
  for (std::int64_t k = 0; k < 500; ++k) {
    EXPECT_EQ(a.fire(FaultSite::TaskThrow, k, k + 1),
              b.fire(FaultSite::TaskThrow, k, k + 1));
  }
  EXPECT_GT(a.fired_count(FaultSite::TaskThrow), 0);
  EXPECT_LT(a.fired_count(FaultSite::TaskThrow), 500);
  const auto la = a.fired_log(), lb = b.fired_log();
  ASSERT_EQ(la.size(), lb.size());
  for (std::size_t i = 0; i < la.size(); ++i) {
    EXPECT_EQ(la[i].occurrence, lb[i].occurrence);
    EXPECT_EQ(la[i].k1, lb[i].k1);
  }
  std::ostringstream ja, jb;
  a.write_log(ja);
  b.write_log(jb);
  EXPECT_EQ(ja.str(), jb.str());  // byte-identical replay artifact

  // A different seed gives a different firing pattern.
  FaultInjector c(FaultPlan::single(FaultSite::TaskThrow, 0.2, -1, 8));
  std::vector<std::int64_t> occ_a, occ_c;
  for (const auto& f : la) occ_a.push_back(f.occurrence);
  for (std::int64_t k = 0; k < 500; ++k)
    if (c.fire(FaultSite::TaskThrow, k, k + 1)) occ_c.push_back(k);
  EXPECT_NE(occ_a, occ_c);
}

TEST(FaultInjector, MaxFiresCapsFirings) {
  FaultInjector inj(FaultPlan::single(FaultSite::TaskThrow, 1.0,
                                      /*max_fires=*/3));
  int fired = 0;
  for (int k = 0; k < 50; ++k) fired += inj.fire(FaultSite::TaskThrow, k, 0);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(inj.fired_count(FaultSite::TaskThrow), 3);
  EXPECT_EQ(inj.occurrences(FaultSite::TaskThrow), 50);
}

TEST(FaultInjector, HookInstallationIsScoped) {
  EXPECT_EQ(fault_hook(), nullptr);
  {
    FaultInjectionScope scope(FaultPlan::single(FaultSite::TaskThrow, 1.0, 1));
    EXPECT_EQ(fault_hook(), &scope.injector());
    EXPECT_THROW(maybe_inject_task_fault(0, 0), InjectedFault);
    maybe_inject_task_fault(1, 1);  // capped: no further throws
  }
  EXPECT_EQ(fault_hook(), nullptr);
  maybe_inject_task_fault(2, 2);  // hook off: never throws
}

// --- RetryPolicy ----------------------------------------------------------

TEST(RetryPolicy, BackoffIsCappedAndJittered) {
  RetryPolicy rp;
  rp.max_attempts = 8;
  rp.base_backoff = milliseconds(2);
  rp.max_backoff = milliseconds(16);
  EXPECT_EQ(rp.backoff(1).count(), 0);  // first attempt never waits
  for (int attempt = 2; attempt <= 12; ++attempt) {
    const auto d = rp.backoff(attempt, /*salt=*/99);
    EXPECT_GE(d.count(), 1) << attempt;
    EXPECT_LE(d.count(), 16) << attempt;
  }
  // Deterministic for a given (attempt, salt).
  EXPECT_EQ(rp.backoff(5, 3).count(), rp.backoff(5, 3).count());
  RetryPolicy off;
  EXPECT_FALSE(off.enabled());
}

// --- checksums ------------------------------------------------------------

TEST(BlockChecksums, DetectsSingleBitCorruption) {
  BlockedTriangularMatrix<float> mat(128, 32);
  NpdpInstance<float> inst = pure_instance(128);
  ExecutionContext ctx;
  ctx.tuning.block_side = 32;
  solve_blocked_serial_into(mat, inst, ctx);

  resilience::BlockChecksums<float> sums(mat);
  const index_t m = mat.blocks_per_side();
  for (index_t bj = 0; bj < m; ++bj)
    for (index_t bi = 0; bi <= bj; ++bi) sums.record(bi, bj);
  for (index_t bj = 0; bj < m; ++bj)
    for (index_t bi = 0; bi <= bj; ++bi) EXPECT_TRUE(sums.verify(bi, bj));

  float* cell = mat.block(1, 2);
  const float saved = cell[17];
  std::uint32_t bits;
  std::memcpy(&bits, &cell[17], sizeof bits);
  bits ^= 1u;  // flip the lowest mantissa bit
  std::memcpy(&cell[17], &bits, sizeof bits);
  EXPECT_FALSE(sums.verify(1, 2));
  EXPECT_TRUE(sums.verify(0, 2));  // neighbours unaffected
  cell[17] = saved;
  EXPECT_TRUE(sums.verify(1, 2));
}

// --- resilient solve ------------------------------------------------------

TEST(ResilientSolve, HealsDeterministicThrowsAndCorruption) {
  const index_t n = 256, bs = 32;
  NpdpInstance<float> inst = pure_instance(n);
  ExecutionContext ctx;
  ctx.tuning.block_side = bs;
  BlockedTriangularMatrix<float> clean(n, bs);
  solve_blocked_serial_into(clean, inst, ctx);

  FaultPlan plan;
  plan.seed = 5;
  plan.rules.push_back({FaultSite::TaskThrow, 1.0, 3, 0});
  plan.rules.push_back({FaultSite::BlockCorrupt, 1.0, 4, 0});
  FaultInjectionScope scope(std::move(plan));

  BlockedTriangularMatrix<float> healed(n, bs);
  resilience::ResilienceReport rep;
  const SolveStatus st = resilience::solve_blocked_serial_resilient_into(
      healed, inst, ctx, {}, &rep);
  EXPECT_EQ(st, SolveStatus::Ok);
  EXPECT_EQ(rep.block_retries, 3);
  EXPECT_EQ(rep.block_repairs, 4);
  EXPECT_TRUE(tables_identical(clean, healed));
}

TEST(ResilientSolve, RandomFaultPlanStaysBitIdentical) {
  // The acceptance scenario: 1% task throws + 0.1% block corruption, with
  // the solve still completing bit-identical to a clean run.
  const index_t n = 768, bs = 32;
  NpdpInstance<float> inst = pure_instance(n, 23);
  ExecutionContext ctx;
  ctx.tuning.block_side = bs;
  BlockedTriangularMatrix<float> clean(n, bs);
  solve_blocked_serial_into(clean, inst, ctx);

  FaultPlan plan;
  plan.seed = 42;
  plan.rules.push_back({FaultSite::TaskThrow, 0.01, -1, 0});
  plan.rules.push_back({FaultSite::BlockCorrupt, 0.001, -1, 0});
  FaultInjectionScope scope(std::move(plan));

  BlockedTriangularMatrix<float> healed(n, bs);
  const SolveStatus st = resilience::solve_blocked_serial_resilient_into(
      healed, inst, ctx);
  EXPECT_EQ(st, SolveStatus::Ok);
  EXPECT_TRUE(tables_identical(clean, healed));
}

TEST(ResilientSolve, GeneralModeRepairReseedsBeforeRecompute) {
  // finalize_cell folds min(init, weight + acc) over the current cell, so
  // naively re-running a corrupted block would fold garbage into the
  // answer; the repair path must re-seed first.
  const index_t n = 192, bs = 32;
  NpdpInstance<float> inst = general_instance(n);
  ExecutionContext ctx;
  ctx.tuning.block_side = bs;
  BlockedTriangularMatrix<float> clean(n, bs);
  solve_blocked_serial_into(clean, inst, ctx);

  FaultPlan plan;
  plan.seed = 3;
  plan.rules.push_back({FaultSite::BlockCorrupt, 1.0, 5, 0});
  FaultInjectionScope scope(std::move(plan));

  BlockedTriangularMatrix<float> healed(n, bs);
  resilience::ResilienceReport rep;
  ASSERT_EQ(resilience::solve_blocked_serial_resilient_into(healed, inst, ctx,
                                                            {}, &rep),
            SolveStatus::Ok);
  EXPECT_EQ(rep.block_repairs, 5);
  EXPECT_TRUE(tables_identical(clean, healed));
}

TEST(ResilientSolve, ResilientBackendMatchesBlockedSerial) {
  const auto& resilient = backend::require_backend("resilient");
  EXPECT_TRUE(resilient.caps().self_checking);
  const auto& serial = backend::require_backend("blocked-serial");
  NpdpInstance<float> inst = pure_instance(320, 17);
  ExecutionContext ctx;
  ctx.tuning.block_side = 32;
  const auto a = resilient.solve(inst, ctx);
  const auto b = serial.solve(inst, ctx);
  ASSERT_EQ(a.status, SolveStatus::Ok);
  EXPECT_EQ(a.value, b.value);
  ASSERT_NE(a.blocked, nullptr);
  ASSERT_NE(b.blocked, nullptr);
  EXPECT_TRUE(tables_identical(*a.blocked, *b.blocked));
}

// --- executor-level recovery ---------------------------------------------

TEST(Executor, ParallelSolveRetriesFailedTasksAndStaysExact) {
  const index_t n = 512, bs = 32;
  NpdpInstance<float> inst = pure_instance(n, 29);
  NpdpOptions opts;
  opts.block_side = bs;
  BlockedTriangularMatrix<float> clean = solve_blocked_serial(inst, opts);

  FaultInjectionScope scope(
      FaultPlan::single(FaultSite::TaskThrow, 1.0, /*max_fires=*/2));
  const std::int64_t retries_before =
      obs::metrics().counter("sched.task_retries").value();

  BlockedTriangularMatrix<float> mat(n, bs);
  ExecutionContext ctx;
  ctx.tuning.block_side = bs;
  ctx.tuning.threads = 4;
  ctx.retry.max_attempts = 4;
  ASSERT_EQ(solve_blocked_parallel_into(mat, inst, ctx), SolveStatus::Ok);
  EXPECT_TRUE(tables_identical(clean, mat));
  EXPECT_EQ(obs::metrics().counter("sched.task_retries").value(),
            retries_before + 2);
}

TEST(Executor, FailureWithoutRetryPropagatesInsteadOfHanging) {
  const index_t n = 256, bs = 32;
  NpdpInstance<float> inst = pure_instance(n);
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    FaultInjectionScope scope(
        FaultPlan::single(FaultSite::TaskThrow, 1.0, /*max_fires=*/1));
    BlockedTriangularMatrix<float> mat(n, bs);
    ExecutionContext ctx;
    ctx.tuning.block_side = bs;
    ctx.tuning.threads = threads;
    EXPECT_THROW(solve_blocked_parallel_into(mat, inst, ctx), InjectedFault)
        << threads << " threads";
  }
}

TEST(Executor, RetryBudgetExhaustionRethrowsLastError) {
  const index_t n = 192, bs = 32;
  NpdpInstance<float> inst = pure_instance(n);
  // Unlimited firings: every attempt of the first task throws.
  FaultInjectionScope scope(FaultPlan::single(FaultSite::TaskThrow, 1.0));
  BlockedTriangularMatrix<float> mat(n, bs);
  ExecutionContext ctx;
  ctx.tuning.block_side = bs;
  ctx.tuning.threads = 2;
  ctx.retry.max_attempts = 3;
  EXPECT_THROW(solve_blocked_parallel_into(mat, inst, ctx), InjectedFault);
}

// --- thread pool ----------------------------------------------------------

TEST(ThreadPool, WaitIdleAggregatesEveryJobException) {
  ThreadPool pool(2);
  for (int i = 0; i < 3; ++i)
    pool.submit([i] { throw std::runtime_error("job " + std::to_string(i)); });
  pool.submit([] {});
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  EXPECT_EQ(pool.last_errors().size(), 3u);
  for (const std::exception_ptr& e : pool.last_errors())
    EXPECT_THROW(std::rethrow_exception(e), std::runtime_error);
  // A clean wave does not resurrect old errors...
  pool.submit([] {});
  pool.wait_idle();
  // ...but the last failing wave stays inspectable.
  EXPECT_EQ(pool.last_errors().size(), 3u);
}

TEST(ThreadPool, WorkerDeathIsHealedWithoutLosingJobs) {
  FaultInjectionScope scope(
      FaultPlan::single(FaultSite::WorkerDeath, 1.0, /*max_fires=*/2));
  const std::int64_t deaths_before =
      obs::metrics().counter("pool.worker_deaths").value();
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i)
      pool.submit([&ran] { ++ran; });
    pool.wait_idle();
    EXPECT_EQ(ran.load(), 64);
    EXPECT_EQ(pool.worker_deaths(), 2u);
    EXPECT_EQ(pool.thread_count(), 2u);
  }
  EXPECT_EQ(obs::metrics().counter("pool.worker_deaths").value(),
            deaths_before + 2);
}

// --- circuit breaker ------------------------------------------------------

BreakerPolicy fast_breaker() {
  BreakerPolicy p;
  p.window = 8;
  p.min_samples = 4;
  p.failure_threshold = 0.5;
  p.open_for = milliseconds(60);
  p.half_open_probes = 2;
  return p;
}

TEST(CircuitBreaker, WalksClosedOpenHalfOpenClosed) {
  CircuitBreaker br(fast_breaker());
  EXPECT_EQ(br.state(), BreakerState::Closed);
  EXPECT_TRUE(br.allow());
  for (int i = 0; i < 4; ++i) br.record_failure();
  EXPECT_EQ(br.state(), BreakerState::Open);
  EXPECT_FALSE(br.allow());
  EXPECT_GE(br.retry_after_ms(), 1);
  std::this_thread::sleep_for(milliseconds(80));
  EXPECT_TRUE(br.allow());  // probe 1 (now half-open)
  EXPECT_EQ(br.state(), BreakerState::HalfOpen);
  EXPECT_TRUE(br.allow());   // probe 2
  EXPECT_FALSE(br.allow());  // probe budget spent
  br.record_success();
  br.record_success();
  EXPECT_EQ(br.state(), BreakerState::Closed);
  EXPECT_TRUE(br.allow());
}

TEST(CircuitBreaker, AbandonedProbesReleaseTheirSlots) {
  CircuitBreaker br(fast_breaker());
  for (int i = 0; i < 4; ++i) br.record_failure();
  ASSERT_EQ(br.state(), BreakerState::Open);
  std::this_thread::sleep_for(milliseconds(80));
  ASSERT_TRUE(br.allow());
  ASSERT_TRUE(br.allow());
  ASSERT_FALSE(br.allow());  // probe budget spent
  // Both probes get cancelled mid-flight and report no outcome. Their
  // slots must come back, or the breaker is wedged HalfOpen forever.
  br.record_abandoned();
  br.record_abandoned();
  EXPECT_EQ(br.state(), BreakerState::HalfOpen);
  ASSERT_TRUE(br.allow());
  br.record_success();
  ASSERT_TRUE(br.allow());  // success freed its slot too
  br.record_success();
  EXPECT_EQ(br.state(), BreakerState::Closed);
}

TEST(CircuitBreaker, FailedProbeReopensAndBelowThresholdStaysClosed) {
  CircuitBreaker br(fast_breaker());
  for (int i = 0; i < 4; ++i) br.record_failure();
  ASSERT_EQ(br.state(), BreakerState::Open);
  std::this_thread::sleep_for(milliseconds(80));
  ASSERT_TRUE(br.allow());
  br.record_failure();  // probe fails
  EXPECT_EQ(br.state(), BreakerState::Open);
  EXPECT_FALSE(br.allow());

  CircuitBreaker healthy(fast_breaker());
  for (int i = 0; i < 100; ++i) {
    healthy.record_success();
    if (i % 3 == 0) healthy.record_failure();  // ~33% < 50% threshold
  }
  EXPECT_EQ(healthy.state(), BreakerState::Closed);
}

TEST(BreakerBoard, SnapshotAndForceOpen) {
  resilience::breakers().clear();
  CircuitBreaker& br = resilience::breakers().breaker("unit-test-backend");
  EXPECT_EQ(resilience::breakers().find("unit-test-backend"), &br);
  EXPECT_EQ(resilience::breakers().find("missing"), nullptr);
  br.force_open();
  const auto rows = resilience::breakers().snapshot();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].name, "unit-test-backend");
  EXPECT_EQ(rows[0].state, BreakerState::Open);
  EXPECT_GE(rows[0].retry_after_ms, 1);
  resilience::breakers().clear();
}

// --- serve-layer resilience ----------------------------------------------

serve::Request solve_request(index_t n, std::uint64_t seed) {
  serve::Request r;
  serve::SolveSpec s;
  s.n = n;
  s.seed = seed;
  s.block_side = 32;
  r.payload = s;
  return r;
}

TEST(ServeResilience, RetriesRecoverFromInjectedThrows) {
  FaultInjectionScope scope(
      FaultPlan::single(FaultSite::TaskThrow, 1.0, /*max_fires=*/2));
  serve::ServiceOptions so;
  so.workers = 1;
  so.resilience.retry.max_attempts = 4;
  serve::SolveService svc(so);
  const serve::Response r = svc.submit(solve_request(96, 1)).get();
  EXPECT_EQ(r.status, serve::Status::Ok);
  svc.stop();
  EXPECT_EQ(svc.stats().retries, 2u);
  EXPECT_EQ(svc.stats().errors, 0u);
}

TEST(ServeResilience, ExhaustedRetriesWithoutFallbackAnswerError) {
  FaultInjectionScope scope(FaultPlan::single(FaultSite::TaskThrow, 1.0));
  serve::ServiceOptions so;
  so.workers = 1;
  so.resilience.retry.max_attempts = 2;
  serve::SolveService svc(so);
  const serve::Response r = svc.submit(solve_request(96, 2)).get();
  EXPECT_EQ(r.status, serve::Status::Error);
  svc.stop();
  EXPECT_EQ(svc.stats().retries, 1u);
}

TEST(ServeResilience, OpenBreakerShedsWithRetryAfterHint) {
  resilience::breakers().clear();
  serve::ServiceOptions so;
  so.workers = 1;
  so.resilience.breaker_enabled = true;
  serve::SolveService svc(so);
  resilience::breakers().breaker(so.backend).force_open();
  const serve::Response r = svc.submit(solve_request(96, 3)).get();
  EXPECT_EQ(r.status, serve::Status::RetryAfter);
  EXPECT_GE(r.retry_after_ms, 1);
  svc.stop();
  EXPECT_EQ(svc.stats().retry_after, 1u);
  EXPECT_EQ(svc.stats().responded(), svc.stats().submitted);
  resilience::breakers().clear();
}

TEST(ServeResilience, OpenBreakerDegradesOntoFallbackBackend) {
  resilience::breakers().clear();
  serve::ServiceOptions so;
  so.workers = 1;
  so.resilience.breaker_enabled = true;
  so.resilience.fallback_backend = "reference";
  serve::SolveService svc(so);
  resilience::breakers().breaker(so.backend).force_open();
  // The clean answer, for comparison.
  serve::SolverPool oracle(1);
  const serve::SolveOutcome expect = oracle.execute(solve_request(96, 4));
  ASSERT_TRUE(expect.ok);

  const serve::Response r = svc.submit(solve_request(96, 4)).get();
  EXPECT_EQ(r.status, serve::Status::Degraded);
  EXPECT_TRUE(serve::is_success(r.status));
  EXPECT_EQ(r.value, expect.value);
  svc.stop();
  EXPECT_EQ(svc.stats().degraded, 1u);
  EXPECT_EQ(svc.stats().fallbacks, 1u);
  resilience::breakers().clear();
}

TEST(ServeResilience, RepeatedFailuresTripTheBreaker) {
  resilience::breakers().clear();
  // Every attempt throws; breaker policy trips quickly.
  FaultInjectionScope scope(FaultPlan::single(FaultSite::TaskThrow, 1.0));
  serve::ServiceOptions so;
  so.workers = 1;
  so.batch_max = 1;
  so.resilience.breaker_enabled = true;
  so.resilience.breaker.window = 8;
  so.resilience.breaker.min_samples = 4;
  so.resilience.breaker.open_for = seconds(30);
  serve::SolveService svc(so);
  std::vector<std::future<serve::Response>> futs;
  for (std::uint64_t seed = 0; seed < 8; ++seed)
    futs.push_back(svc.submit(solve_request(96, 100 + seed)));
  std::uint64_t errors = 0, retry_after = 0;
  for (auto& f : futs) {
    const serve::Response r = f.get();
    errors += r.status == serve::Status::Error;
    retry_after += r.status == serve::Status::RetryAfter;
  }
  svc.stop();
  EXPECT_GE(errors, 4u);       // the failures that tripped it
  EXPECT_GE(retry_after, 1u);  // later requests refused while open
  const CircuitBreaker* br = resilience::breakers().find(so.backend);
  ASSERT_NE(br, nullptr);
  EXPECT_EQ(br->state(), BreakerState::Open);
  resilience::breakers().clear();
}

TEST(ServeResilience, HedgedStragglerFinishesFast) {
  serve::ServiceOptions so;
  so.workers = 2;
  so.resilience.hedge.enabled = true;
  so.resilience.hedge.k = 3.0;
  so.resilience.hedge.min_samples = 8;
  serve::SolveService svc(so);
  // Warm the latency estimate with distinct seeds (no cache hits).
  std::vector<std::future<serve::Response>> warm;
  for (std::uint64_t seed = 1; seed <= 10; ++seed)
    warm.push_back(svc.submit(solve_request(128, seed)));
  for (auto& f : warm) ASSERT_TRUE(serve::is_success(f.get().status));

  // One straggler: the next request stalls 400ms inside the worker.
  FaultInjectionScope scope(FaultPlan::single(
      FaultSite::TaskStall, 1.0, /*max_fires=*/1, /*seed=*/1,
      /*stall_ms=*/400));
  const serve::Response r = svc.submit(solve_request(128, 999)).get();
  EXPECT_EQ(r.status, serve::Status::Ok);
  // Bounded by healthy-task latency (millisecond scale), far under the
  // injected stall; the generous margin keeps slow CI honest.
  EXPECT_LT(r.total_ns, 300 * 1'000'000LL);
  svc.stop();
  EXPECT_GE(svc.stats().hedges, 1u);
  EXPECT_GE(svc.stats().hedge_wins, 1u);
  EXPECT_EQ(svc.stats().responded(), svc.stats().submitted);
}

TEST(ServeResilience, QueueOverloadInjectionRejectsAtAdmission) {
  FaultInjectionScope scope(
      FaultPlan::single(FaultSite::QueueOverload, 1.0, /*max_fires=*/1));
  serve::SolveService svc;
  const serve::Response first = svc.submit(solve_request(96, 7)).get();
  EXPECT_EQ(first.status, serve::Status::Rejected);
  EXPECT_EQ(first.detail, "injected queue overload");
  const serve::Response second = svc.submit(solve_request(96, 8)).get();
  EXPECT_EQ(second.status, serve::Status::Ok);
  svc.stop();
}

TEST(ServeResilience, ShedBumpsObsCounterAndStats) {
  const std::int64_t shed_before =
      obs::metrics().counter("serve.shed").value();
  serve::ServiceOptions so;
  so.workers = 1;
  so.queue_capacity = 1;
  so.policy = serve::OverloadPolicy::ShedOldest;
  so.batch_max = 1;
  serve::SolveService svc(so);
  std::vector<std::future<serve::Response>> futs;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    serve::Request r;
    serve::FoldSpec f;
    f.random_n = 200;
    f.seed = seed;
    r.payload = f;
    futs.push_back(svc.submit(std::move(r)));
  }
  std::this_thread::sleep_for(milliseconds(20));
  for (std::uint64_t seed = 100; seed < 108; ++seed) {
    serve::Request r;
    serve::FoldSpec f;
    f.random_n = 200;
    f.seed = seed;
    r.payload = f;
    futs.push_back(svc.submit(std::move(r)));
  }
  std::uint64_t shed = 0;
  for (auto& f : futs) shed += f.get().status == serve::Status::Shed;
  svc.stop();
  EXPECT_GT(shed, 0u);
  EXPECT_EQ(svc.stats().shed, shed);
  EXPECT_EQ(obs::metrics().counter("serve.shed").value(),
            shed_before + std::int64_t(shed));
}

// --- cancel-token re-arm over a reused arena (PR 3 follow-up) -------------

TEST(CancelToken, RearmAfterCancelledSolveReusesSameArena) {
  const index_t n = 256, bs = 32;
  NpdpInstance<float> inst = pure_instance(n, 31);
  NpdpOptions opts;
  opts.block_side = bs;
  const BlockedTriangularMatrix<float> clean =
      solve_blocked_serial(inst, opts);

  BlockedTriangularMatrix<float> arena(n, bs);
  ExecutionContext ctx;
  ctx.tuning = opts;
  ctx.cancel = CancelToken::armed();
  ctx.cancel.request_cancel();  // tripped before the solve starts
  ASSERT_EQ(solve_blocked_serial_into(arena, inst, ctx),
            SolveStatus::Cancelled);

  // Re-arm with a fresh token, reset the same arena, solve to completion:
  // the partial/cancelled state must leave no residue.
  ctx.cancel = CancelToken::armed();
  arena.reset();
  ASSERT_EQ(solve_blocked_serial_into(arena, inst, ctx), SolveStatus::Ok);
  EXPECT_FALSE(ctx.cancelled());
  EXPECT_TRUE(tables_identical(clean, arena));
}

}  // namespace
}  // namespace cellnpdp
