// SIMD wrapper and computing-block kernel tests. Every SIMD path must be
// bit-identical to the deliberately scalar reference path.
#include <gtest/gtest.h>

#include <algorithm>
#include <type_traits>
#include <vector>

#include "common/aligned.hpp"
#include "common/rng.hpp"
#include "simd/dispatch.hpp"

namespace cellnpdp {
namespace {

template <class T, int W>
void vec_roundtrip_case() {
  alignas(kBufferAlignment) T in[W], out[W];
  for (int i = 0; i < W; ++i) in[i] = T(i) * T(1.5) + T(1);
  auto v = Vec<T, W>::load(in);
  v.store(out);
  for (int i = 0; i < W; ++i) EXPECT_EQ(out[i], in[i]);

  auto s = Vec<T, W>::set1(T(7));
  s.store(out);
  for (int i = 0; i < W; ++i) EXPECT_EQ(out[i], T(7));
}

TEST(Vec, LoadStoreSet1AllWidths) {
  vec_roundtrip_case<float, 4>();
  vec_roundtrip_case<float, 8>();
  vec_roundtrip_case<double, 2>();
  vec_roundtrip_case<double, 4>();
  vec_roundtrip_case<float, 3>();  // generic fallback width
}

template <class T, int W>
void vec_arith_case() {
  alignas(kBufferAlignment) T a[W], b[W], out[W];
  SplitMix64 rng(99);
  for (int i = 0; i < W; ++i) {
    a[i] = T(rng.next_in(-50, 50));
    b[i] = T(rng.next_in(-50, 50));
  }
  auto va = Vec<T, W>::load(a), vb = Vec<T, W>::load(b);
  (va + vb).store(out);
  for (int i = 0; i < W; ++i) EXPECT_EQ(out[i], a[i] + b[i]);
  (va * vb).store(out);
  for (int i = 0; i < W; ++i) EXPECT_EQ(out[i], a[i] * b[i]);
  vmin(va, vb).store(out);
  for (int i = 0; i < W; ++i) EXPECT_EQ(out[i], std::min(a[i], b[i]));
  vmax(va, vb).store(out);
  for (int i = 0; i < W; ++i) EXPECT_EQ(out[i], std::max(a[i], b[i]));
}

TEST(Vec, AddMulMinMaxAllWidths) {
  vec_arith_case<float, 4>();
  vec_arith_case<float, 8>();
  vec_arith_case<double, 2>();
  vec_arith_case<double, 4>();
  vec_arith_case<double, 5>();  // generic fallback width
}

template <class T, int W, int L>
void splat_lane_case() {
  alignas(kBufferAlignment) T in[W], out[W];
  for (int i = 0; i < W; ++i) in[i] = T(i + 1);
  auto v = Vec<T, W>::template splat<L>(Vec<T, W>::load(in));
  v.store(out);
  for (int i = 0; i < W; ++i) EXPECT_EQ(out[i], T(L + 1)) << "lane " << L;
}

TEST(Vec, SplatEveryLane) {
  splat_lane_case<float, 4, 0>();
  splat_lane_case<float, 4, 1>();
  splat_lane_case<float, 4, 2>();
  splat_lane_case<float, 4, 3>();
  splat_lane_case<float, 8, 0>();
  splat_lane_case<float, 8, 3>();
  splat_lane_case<float, 8, 4>();
  splat_lane_case<float, 8, 7>();
  splat_lane_case<double, 2, 0>();
  splat_lane_case<double, 2, 1>();
  splat_lane_case<double, 4, 0>();
  splat_lane_case<double, 4, 1>();
  splat_lane_case<double, 4, 2>();
  splat_lane_case<double, 4, 3>();
}

// --- computing-block kernels -------------------------------------------

template <class T>
aligned_vector<T> random_tile(index_t side, index_t stride, std::uint64_t seed,
                              double inf_fraction = 0.0) {
  aligned_vector<T> buf(static_cast<std::size_t>(side * stride));
  SplitMix64 rng(seed);
  for (auto& x : buf) {
    x = rng.next_unit() < inf_fraction ? minplus_identity<T>()
                                       : T(rng.next_in(0, 100));
  }
  return buf;
}

template <class T, int W>
void kernel_matches_scalar_case(std::uint64_t seed, double inf_fraction) {
  const index_t stride = 2 * W + 8;  // exercise non-trivial row strides
  auto c0 = random_tile<T>(W, stride, seed);
  auto a = random_tile<T>(W, stride, seed + 1, inf_fraction);
  auto b = random_tile<T>(W, stride, seed + 2, inf_fraction);
  auto c1 = c0;

  minplus_cb<T, W>(c0.data(), stride, a.data(), stride, b.data(), stride);
  minplus_tile_scalar<T>(c1.data(), stride, a.data(), stride, b.data(), stride,
                         W);
  for (index_t r = 0; r < W; ++r)
    for (index_t col = 0; col < W; ++col)
      EXPECT_EQ(c0[r * stride + col], c1[r * stride + col])
          << "W=" << W << " r=" << r << " c=" << col;
}

TEST(Kernels, MinPlusMatchesScalarAllWidths) {
  for (std::uint64_t s = 0; s < 8; ++s) {
    kernel_matches_scalar_case<float, 4>(s, 0.0);
    kernel_matches_scalar_case<float, 8>(s, 0.0);
    kernel_matches_scalar_case<double, 2>(s, 0.0);
    kernel_matches_scalar_case<double, 4>(s, 0.0);
  }
}

TEST(Kernels, MinPlusHandlesIdentityPadding) {
  // Padded tiles mix +inf into A and B; the kernel must treat them as
  // no-ops exactly like the scalar path.
  for (std::uint64_t s = 0; s < 8; ++s) {
    kernel_matches_scalar_case<float, 4>(s + 100, 0.3);
    kernel_matches_scalar_case<float, 8>(s + 100, 0.3);
    kernel_matches_scalar_case<double, 2>(s + 100, 0.3);
    kernel_matches_scalar_case<double, 4>(s + 100, 0.3);
  }
}

TEST(Kernels, AllIdentityInputsLeaveCUntouched) {
  constexpr int W = 4;
  const index_t stride = 16;
  auto c0 = random_tile<float>(W, stride, 5);
  auto a = random_tile<float>(W, stride, 6, 1.0);  // all +inf
  auto b = random_tile<float>(W, stride, 7, 1.0);
  auto expect = c0;
  minplus_cb<float, W>(c0.data(), stride, a.data(), stride, b.data(), stride);
  EXPECT_EQ(c0, expect);
}

template <class T, int W>
void sep_kernel_case(std::uint64_t seed) {
  const index_t stride = 3 * W;
  auto c0 = random_tile<T>(W, stride, seed);
  auto a = random_tile<T>(W, stride, seed + 1);
  auto b = random_tile<T>(W, stride, seed + 2);
  auto c1 = c0;
  // Integer-valued factors keep products exact at any association, but the
  // kernels are also required to associate (u*v)*w identically.
  alignas(kBufferAlignment) T u[W], v[W], w[W];
  SplitMix64 rng(seed + 3);
  for (int i = 0; i < W; ++i) {
    u[i] = T(double(rng.next_below(10)));
    v[i] = T(double(rng.next_below(10)));
    w[i] = T(double(rng.next_below(10)));
  }
  minplus_cb_sep<T, W>(c0.data(), stride, a.data(), stride, b.data(), stride,
                       u, v, w);
  minplus_tile_scalar_sep<T>(c1.data(), stride, a.data(), stride, b.data(),
                             stride, W, u, v, w);
  for (index_t r = 0; r < W; ++r)
    for (index_t col = 0; col < W; ++col)
      EXPECT_EQ(c0[r * stride + col], c1[r * stride + col]);
}

TEST(Kernels, SeparableTermMatchesScalarAllWidths) {
  for (std::uint64_t s = 0; s < 8; ++s) {
    sep_kernel_case<float, 4>(s);
    sep_kernel_case<float, 8>(s);
    sep_kernel_case<double, 2>(s);
    sep_kernel_case<double, 4>(s);
  }
}

// --- semiring-generic kernels ------------------------------------------

/// Tile filled with values drawn from the semiring's natural domain;
/// `zero_fraction` mixes in the semiring zero (the padding value the
/// blocked layout uses) so annihilator handling gets exercised too.
template <class S>
aligned_vector<typename S::value_type> random_semiring_tile(
    index_t side, index_t stride, std::uint64_t seed, double zero_fraction) {
  using T = typename S::value_type;
  aligned_vector<T> buf(static_cast<std::size_t>(side * stride));
  SplitMix64 rng(seed);
  for (auto& x : buf) {
    if (rng.next_unit() < zero_fraction) {
      x = S::zero();
    } else if constexpr (S::id == SemiringId::Counting) {
      x = T(rng.next_below(4));  // small integers: exact in float or double
    } else if constexpr (S::id == SemiringId::ViterbiLog) {
      x = T(-double(rng.next_below(50)));  // log-probabilities are <= 0
    } else {
      x = T(rng.next_in(-50, 50));
    }
  }
  return buf;
}

template <class S, int W>
void semiring_kernel_case(std::uint64_t seed, double zero_fraction) {
  using T = typename S::value_type;
  const index_t stride = 2 * W + 8;
  auto c0 = random_semiring_tile<S>(W, stride, seed, 0.0);
  auto a = random_semiring_tile<S>(W, stride, seed + 1, zero_fraction);
  auto b = random_semiring_tile<S>(W, stride, seed + 2, zero_fraction);
  auto c1 = c0;

  semiring_cb<S, T, W>(c0.data(), stride, a.data(), stride, b.data(), stride);
  semiring_tile_scalar<S, T>(c1.data(), stride, a.data(), stride, b.data(),
                             stride, W);
  for (index_t r = 0; r < W; ++r)
    for (index_t col = 0; col < W; ++col)
      EXPECT_EQ(c0[r * stride + col], c1[r * stride + col])
          << semiring_name(S::id) << " W=" << W << " r=" << r << " c=" << col;
}

template <class S>
void semiring_kernel_all_widths(std::uint64_t seed, double zero_fraction) {
  using T = typename S::value_type;
  if constexpr (std::is_same_v<T, float>) {
    semiring_kernel_case<S, 4>(seed, zero_fraction);
    semiring_kernel_case<S, 8>(seed, zero_fraction);
  } else {
    semiring_kernel_case<S, 2>(seed, zero_fraction);
    semiring_kernel_case<S, 4>(seed, zero_fraction);
  }
}

TEST(Kernels, EverySemiringMatchesScalarAllWidths) {
  for (std::uint64_t s = 0; s < 4; ++s) {
    semiring_kernel_all_widths<MinPlusSemiring<float>>(s, 0.0);
    semiring_kernel_all_widths<MinPlusSemiring<double>>(s, 0.0);
    semiring_kernel_all_widths<MaxPlusSemiring<float>>(s, 0.0);
    semiring_kernel_all_widths<MaxPlusSemiring<double>>(s, 0.0);
    semiring_kernel_all_widths<CountingSemiring<float>>(s, 0.0);
    semiring_kernel_all_widths<CountingSemiring<double>>(s, 0.0);
    semiring_kernel_all_widths<ViterbiLogSemiring<float>>(s, 0.0);
  }
}

TEST(Kernels, EverySemiringHandlesZeroPadding) {
  // The annihilator (padding) value must behave as a no-op contribution in
  // every semiring, SIMD and scalar alike: -inf kills a max-plus term the
  // same way 0 kills a counting product.
  for (std::uint64_t s = 0; s < 4; ++s) {
    semiring_kernel_all_widths<MinPlusSemiring<float>>(s + 100, 0.3);
    semiring_kernel_all_widths<MaxPlusSemiring<float>>(s + 100, 0.3);
    semiring_kernel_all_widths<CountingSemiring<double>>(s + 100, 0.3);
    semiring_kernel_all_widths<ViterbiLogSemiring<float>>(s + 100, 0.3);
  }
}

template <class S, int W>
void semiring_sep_kernel_case(std::uint64_t seed) {
  using T = typename S::value_type;
  const index_t stride = 3 * W;
  auto c0 = random_semiring_tile<S>(W, stride, seed, 0.0);
  auto a = random_semiring_tile<S>(W, stride, seed + 1, 0.0);
  auto b = random_semiring_tile<S>(W, stride, seed + 2, 0.0);
  auto c1 = c0;
  alignas(kBufferAlignment) T u[W], v[W], w[W];
  SplitMix64 rng(seed + 3);
  for (int i = 0; i < W; ++i) {
    u[i] = T(double(rng.next_below(4)));
    v[i] = T(double(rng.next_below(4)));
    w[i] = T(double(rng.next_below(4)));
  }
  semiring_cb_sep<S, T, W>(c0.data(), stride, a.data(), stride, b.data(),
                           stride, u, v, w);
  semiring_tile_scalar_sep<S, T>(c1.data(), stride, a.data(), stride, b.data(),
                                 stride, W, u, v, w);
  for (index_t r = 0; r < W; ++r)
    for (index_t col = 0; col < W; ++col)
      EXPECT_EQ(c0[r * stride + col], c1[r * stride + col])
          << semiring_name(S::id) << " W=" << W;
}

TEST(Kernels, SeparableTermEverySemiring) {
  for (std::uint64_t s = 0; s < 4; ++s) {
    semiring_sep_kernel_case<MaxPlusSemiring<float>, 8>(s);
    semiring_sep_kernel_case<MaxPlusSemiring<double>, 4>(s);
    semiring_sep_kernel_case<CountingSemiring<double>, 4>(s);
    semiring_sep_kernel_case<ViterbiLogSemiring<float>, 4>(s);
  }
}

TEST(Kernels, OpCountsMatchPaperTableI) {
  // §IV-A: 16 steps * 8 instructions = 128 naive; register caching saves
  // 48 memory instructions leaving 80 (Table I's mix).
  const auto cached = cb_op_counts_cached(4);
  EXPECT_EQ(cached.total(), 80);
  EXPECT_EQ(cached.loads, 12);
  EXPECT_EQ(cached.shuffles, 16);
  EXPECT_EQ(cached.adds, 16);
  EXPECT_EQ(cached.compares, 16);
  EXPECT_EQ(cached.selects, 16);
  EXPECT_EQ(cached.stores, 4);

  const auto naive = cb_op_counts_uncached(4);
  EXPECT_EQ(naive.total(), 128);
  EXPECT_EQ(naive.total() - cached.total(), 48);
}

TEST(Dispatch, KernelWidthsMatchPrecisionAndKind) {
  EXPECT_EQ(cb_kernel<float>(KernelKind::Scalar).width, 4);
  EXPECT_EQ(cb_kernel<float>(KernelKind::Native).width, 4);
  EXPECT_EQ(cb_kernel<float>(KernelKind::Wide).width, 8);
  EXPECT_EQ(cb_kernel<double>(KernelKind::Scalar).width, 4);
  EXPECT_EQ(cb_kernel<double>(KernelKind::Native).width, 2);
  EXPECT_EQ(cb_kernel<double>(KernelKind::Wide).width, 4);
  EXPECT_EQ(kernel_kind_name(KernelKind::Native), "simd128");
}

}  // namespace
}  // namespace cellnpdp
