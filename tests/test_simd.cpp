// SIMD wrapper and computing-block kernel tests. Every SIMD path must be
// bit-identical to the deliberately scalar reference path.
#include <gtest/gtest.h>

#include <vector>

#include "common/aligned.hpp"
#include "common/rng.hpp"
#include "simd/dispatch.hpp"

namespace cellnpdp {
namespace {

template <class T, int W>
void vec_roundtrip_case() {
  alignas(kBufferAlignment) T in[W], out[W];
  for (int i = 0; i < W; ++i) in[i] = T(i) * T(1.5) + T(1);
  auto v = Vec<T, W>::load(in);
  v.store(out);
  for (int i = 0; i < W; ++i) EXPECT_EQ(out[i], in[i]);

  auto s = Vec<T, W>::set1(T(7));
  s.store(out);
  for (int i = 0; i < W; ++i) EXPECT_EQ(out[i], T(7));
}

TEST(Vec, LoadStoreSet1AllWidths) {
  vec_roundtrip_case<float, 4>();
  vec_roundtrip_case<float, 8>();
  vec_roundtrip_case<double, 2>();
  vec_roundtrip_case<double, 4>();
  vec_roundtrip_case<float, 3>();  // generic fallback width
}

template <class T, int W>
void vec_arith_case() {
  alignas(kBufferAlignment) T a[W], b[W], out[W];
  SplitMix64 rng(99);
  for (int i = 0; i < W; ++i) {
    a[i] = T(rng.next_in(-50, 50));
    b[i] = T(rng.next_in(-50, 50));
  }
  auto va = Vec<T, W>::load(a), vb = Vec<T, W>::load(b);
  (va + vb).store(out);
  for (int i = 0; i < W; ++i) EXPECT_EQ(out[i], a[i] + b[i]);
  (va * vb).store(out);
  for (int i = 0; i < W; ++i) EXPECT_EQ(out[i], a[i] * b[i]);
  vmin(va, vb).store(out);
  for (int i = 0; i < W; ++i) EXPECT_EQ(out[i], std::min(a[i], b[i]));
}

TEST(Vec, AddMulMinAllWidths) {
  vec_arith_case<float, 4>();
  vec_arith_case<float, 8>();
  vec_arith_case<double, 2>();
  vec_arith_case<double, 4>();
  vec_arith_case<double, 5>();  // generic fallback width
}

template <class T, int W, int L>
void splat_lane_case() {
  alignas(kBufferAlignment) T in[W], out[W];
  for (int i = 0; i < W; ++i) in[i] = T(i + 1);
  auto v = Vec<T, W>::template splat<L>(Vec<T, W>::load(in));
  v.store(out);
  for (int i = 0; i < W; ++i) EXPECT_EQ(out[i], T(L + 1)) << "lane " << L;
}

TEST(Vec, SplatEveryLane) {
  splat_lane_case<float, 4, 0>();
  splat_lane_case<float, 4, 1>();
  splat_lane_case<float, 4, 2>();
  splat_lane_case<float, 4, 3>();
  splat_lane_case<float, 8, 0>();
  splat_lane_case<float, 8, 3>();
  splat_lane_case<float, 8, 4>();
  splat_lane_case<float, 8, 7>();
  splat_lane_case<double, 2, 0>();
  splat_lane_case<double, 2, 1>();
  splat_lane_case<double, 4, 0>();
  splat_lane_case<double, 4, 1>();
  splat_lane_case<double, 4, 2>();
  splat_lane_case<double, 4, 3>();
}

// --- computing-block kernels -------------------------------------------

template <class T>
aligned_vector<T> random_tile(index_t side, index_t stride, std::uint64_t seed,
                              double inf_fraction = 0.0) {
  aligned_vector<T> buf(static_cast<std::size_t>(side * stride));
  SplitMix64 rng(seed);
  for (auto& x : buf) {
    x = rng.next_unit() < inf_fraction ? minplus_identity<T>()
                                       : T(rng.next_in(0, 100));
  }
  return buf;
}

template <class T, int W>
void kernel_matches_scalar_case(std::uint64_t seed, double inf_fraction) {
  const index_t stride = 2 * W + 8;  // exercise non-trivial row strides
  auto c0 = random_tile<T>(W, stride, seed);
  auto a = random_tile<T>(W, stride, seed + 1, inf_fraction);
  auto b = random_tile<T>(W, stride, seed + 2, inf_fraction);
  auto c1 = c0;

  minplus_cb<T, W>(c0.data(), stride, a.data(), stride, b.data(), stride);
  minplus_tile_scalar<T>(c1.data(), stride, a.data(), stride, b.data(), stride,
                         W);
  for (index_t r = 0; r < W; ++r)
    for (index_t col = 0; col < W; ++col)
      EXPECT_EQ(c0[r * stride + col], c1[r * stride + col])
          << "W=" << W << " r=" << r << " c=" << col;
}

TEST(Kernels, MinPlusMatchesScalarAllWidths) {
  for (std::uint64_t s = 0; s < 8; ++s) {
    kernel_matches_scalar_case<float, 4>(s, 0.0);
    kernel_matches_scalar_case<float, 8>(s, 0.0);
    kernel_matches_scalar_case<double, 2>(s, 0.0);
    kernel_matches_scalar_case<double, 4>(s, 0.0);
  }
}

TEST(Kernels, MinPlusHandlesIdentityPadding) {
  // Padded tiles mix +inf into A and B; the kernel must treat them as
  // no-ops exactly like the scalar path.
  for (std::uint64_t s = 0; s < 8; ++s) {
    kernel_matches_scalar_case<float, 4>(s + 100, 0.3);
    kernel_matches_scalar_case<float, 8>(s + 100, 0.3);
    kernel_matches_scalar_case<double, 2>(s + 100, 0.3);
    kernel_matches_scalar_case<double, 4>(s + 100, 0.3);
  }
}

TEST(Kernels, AllIdentityInputsLeaveCUntouched) {
  constexpr int W = 4;
  const index_t stride = 16;
  auto c0 = random_tile<float>(W, stride, 5);
  auto a = random_tile<float>(W, stride, 6, 1.0);  // all +inf
  auto b = random_tile<float>(W, stride, 7, 1.0);
  auto expect = c0;
  minplus_cb<float, W>(c0.data(), stride, a.data(), stride, b.data(), stride);
  EXPECT_EQ(c0, expect);
}

template <class T, int W>
void sep_kernel_case(std::uint64_t seed) {
  const index_t stride = 3 * W;
  auto c0 = random_tile<T>(W, stride, seed);
  auto a = random_tile<T>(W, stride, seed + 1);
  auto b = random_tile<T>(W, stride, seed + 2);
  auto c1 = c0;
  // Integer-valued factors keep products exact at any association, but the
  // kernels are also required to associate (u*v)*w identically.
  alignas(kBufferAlignment) T u[W], v[W], w[W];
  SplitMix64 rng(seed + 3);
  for (int i = 0; i < W; ++i) {
    u[i] = T(double(rng.next_below(10)));
    v[i] = T(double(rng.next_below(10)));
    w[i] = T(double(rng.next_below(10)));
  }
  minplus_cb_sep<T, W>(c0.data(), stride, a.data(), stride, b.data(), stride,
                       u, v, w);
  minplus_tile_scalar_sep<T>(c1.data(), stride, a.data(), stride, b.data(),
                             stride, W, u, v, w);
  for (index_t r = 0; r < W; ++r)
    for (index_t col = 0; col < W; ++col)
      EXPECT_EQ(c0[r * stride + col], c1[r * stride + col]);
}

TEST(Kernels, SeparableTermMatchesScalarAllWidths) {
  for (std::uint64_t s = 0; s < 8; ++s) {
    sep_kernel_case<float, 4>(s);
    sep_kernel_case<float, 8>(s);
    sep_kernel_case<double, 2>(s);
    sep_kernel_case<double, 4>(s);
  }
}

TEST(Kernels, OpCountsMatchPaperTableI) {
  // §IV-A: 16 steps * 8 instructions = 128 naive; register caching saves
  // 48 memory instructions leaving 80 (Table I's mix).
  const auto cached = cb_op_counts_cached(4);
  EXPECT_EQ(cached.total(), 80);
  EXPECT_EQ(cached.loads, 12);
  EXPECT_EQ(cached.shuffles, 16);
  EXPECT_EQ(cached.adds, 16);
  EXPECT_EQ(cached.compares, 16);
  EXPECT_EQ(cached.selects, 16);
  EXPECT_EQ(cached.stores, 4);

  const auto naive = cb_op_counts_uncached(4);
  EXPECT_EQ(naive.total(), 128);
  EXPECT_EQ(naive.total() - cached.total(), 48);
}

TEST(Dispatch, KernelWidthsMatchPrecisionAndKind) {
  EXPECT_EQ(cb_kernel<float>(KernelKind::Scalar).width, 4);
  EXPECT_EQ(cb_kernel<float>(KernelKind::Native).width, 4);
  EXPECT_EQ(cb_kernel<float>(KernelKind::Wide).width, 8);
  EXPECT_EQ(cb_kernel<double>(KernelKind::Scalar).width, 4);
  EXPECT_EQ(cb_kernel<double>(KernelKind::Native).width, 2);
  EXPECT_EQ(cb_kernel<double>(KernelKind::Wide).width, 4);
  EXPECT_EQ(kernel_kind_name(KernelKind::Native), "simd128");
}

}  // namespace
}  // namespace cellnpdp
