// Tests for multi-tenant QoS: token-bucket math, the --tenants spec
// parser, weighted fair (DRR) dequeue and its interaction with strict
// priority, the weighted shed-victim choice, per-tenant result-cache
// byte quotas, and the service-level throttle path (RetryAfter with a
// refill hint, per-tenant stats rows).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "serve/queue.hpp"
#include "serve/request.hpp"
#include "serve/response.hpp"
#include "serve/result_cache.hpp"
#include "serve/service.hpp"
#include "serve/tenant.hpp"

namespace cellnpdp::serve {
namespace {

using std::chrono::milliseconds;

// --- TokenBucket -----------------------------------------------------------

TEST(TokenBucket, BurstThenThrottleThenRefill) {
  TokenBucket b(/*rate=*/10, /*burst=*/2);
  const auto t0 = TokenBucket::Clock::now();
  EXPECT_TRUE(b.try_take(t0));   // burst capacity
  EXPECT_TRUE(b.try_take(t0));
  EXPECT_FALSE(b.try_take(t0));  // bucket empty at t0
  // One token refills in 1/rate = 100 ms; the hint says exactly that.
  const std::int64_t hint = b.retry_after_ms(t0);
  EXPECT_GT(hint, 0);
  EXPECT_LE(hint, 100);
  EXPECT_FALSE(b.try_take(t0 + milliseconds(50)));  // only half a token
  EXPECT_TRUE(b.try_take(t0 + milliseconds(100)));
  EXPECT_FALSE(b.try_take(t0 + milliseconds(100)));
}

TEST(TokenBucket, RefillCapsAtBurst) {
  TokenBucket b(/*rate=*/100, /*burst=*/3);
  const auto t0 = TokenBucket::Clock::now();
  // A long idle period must not bank more than `burst` tokens.
  const auto later = t0 + std::chrono::seconds(60);
  EXPECT_TRUE(b.try_take(later));
  EXPECT_TRUE(b.try_take(later));
  EXPECT_TRUE(b.try_take(later));
  EXPECT_FALSE(b.try_take(later));
}

TEST(TokenBucket, ZeroRateIsUnlimited) {
  TokenBucket b(/*rate=*/0, /*burst=*/1);
  const auto t0 = TokenBucket::Clock::now();
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(b.try_take(t0));
  EXPECT_EQ(b.retry_after_ms(t0), 0);
}

// --- parse_tenant_spec -----------------------------------------------------

TEST(TenantSpec, ParsesFullSpec) {
  TenantTable t;
  std::string err;
  ASSERT_TRUE(parse_tenant_spec(
      "1:name=hot:rate=500:burst=50:weight=2:cache-kb=64/2:name=quiet:weight=4",
      &t, &err))
      << err;
  ASSERT_EQ(t.policies.size(), 2u);
  const TenantPolicy& hot = t.policy(1);
  EXPECT_EQ(hot.name, "hot");
  EXPECT_DOUBLE_EQ(hot.rate, 500);
  EXPECT_DOUBLE_EQ(hot.burst, 50);
  EXPECT_EQ(hot.weight, 2u);
  EXPECT_EQ(hot.cache_bytes, 64u * 1024u);
  const TenantPolicy& quiet = t.policy(2);
  EXPECT_EQ(quiet.name, "quiet");
  EXPECT_DOUBLE_EQ(quiet.rate, 0);  // unlimited by default
  EXPECT_EQ(quiet.weight, 4u);
  EXPECT_EQ(t.name_of(1), "hot");
  EXPECT_EQ(t.name_of(0), "default");
  EXPECT_EQ(t.name_of(7), "t7");
}

TEST(TenantSpec, IdOnlyEntryGetsDefaults) {
  TenantTable t;
  std::string err;
  ASSERT_TRUE(parse_tenant_spec("3", &t, &err)) << err;
  EXPECT_DOUBLE_EQ(t.policy(3).rate, 0);
  EXPECT_EQ(t.policy(3).weight, 1u);
}

TEST(TenantSpec, RejectsMalformedSpecs) {
  const char* bad[] = {
      "",                    // empty spec
      "x:rate=1",            // non-numeric id
      "256:rate=1",          // id out of range
      "1:rate=1/1:rate=2",   // duplicate id
      "1:rate=-1",           // negative rate
      "1:burst=0",           // burst < 1
      "1:weight=0",          // weight < 1
      "1:cache-kb=oops",     // malformed number
      "1:color=red",         // unknown key
      "1:rate",              // not key=value
  };
  for (const char* spec : bad) {
    TenantTable t;
    std::string err;
    EXPECT_FALSE(parse_tenant_spec(spec, &t, &err)) << spec;
    EXPECT_FALSE(err.empty()) << spec;
  }
}

TEST(TenantSpec, RequestLineCarriesTenant) {
  Request r;
  std::string err;
  ASSERT_TRUE(parse_request_line("chain n=8 seed=1 tenant=3", &r, &err))
      << err;
  EXPECT_EQ(r.tenant, 3);
  EXPECT_FALSE(parse_request_line("chain n=8 seed=1 tenant=999", &r, &err));
  EXPECT_FALSE(parse_request_line("chain n=8 seed=1 tenant=-1", &r, &err));
}

// --- weighted fair dequeue (DRR) ------------------------------------------

TEST(AdmissionQueueQos, DrrServesProportionallyToWeights) {
  AdmissionQueue<int> q(64, OverloadPolicy::Reject);
  q.set_tenant_weight(1, 1);
  q.set_tenant_weight(2, 3);
  for (int i = 0; i < 20; ++i) {
    ASSERT_EQ(q.push(1000 + i, 0, 1), Admission::Admitted);
    ASSERT_EQ(q.push(2000 + i, 0, 2), Admission::Admitted);
  }
  std::map<int, int> served;  // tenant -> count
  int v = 0;
  for (int i = 0; i < 12; ++i) {
    ASSERT_EQ(q.pop(v), PopResult::Item);
    ++served[v / 1000];
  }
  // Per DRR replenish window of 4 credits, tenant 2 (weight 3) gets 3
  // pops for tenant 1's one: 12 pops -> exactly 3 vs 9.
  EXPECT_EQ(served[1], 3);
  EXPECT_EQ(served[2], 9);
}

TEST(AdmissionQueueQos, HotTenantCannotStarveQuietOne) {
  AdmissionQueue<int> q(128, OverloadPolicy::Reject);
  // Equal (default) weights: a tenant with 50 queued entries and one with
  // 5 alternate until the small one drains.
  for (int i = 0; i < 50; ++i)
    ASSERT_EQ(q.push(1000 + i, 0, 1), Admission::Admitted);
  for (int i = 0; i < 5; ++i)
    ASSERT_EQ(q.push(2000 + i, 0, 2), Admission::Admitted);
  int quiet_served = 0, v = 0;
  for (int i = 0; i < 10; ++i) {
    ASSERT_EQ(q.pop(v), PopResult::Item);
    if (v >= 2000) ++quiet_served;
  }
  // All five quiet entries are out within the first ten pops; FIFO order
  // would have served none of them before pop 51.
  EXPECT_EQ(quiet_served, 5);
  // In-tenant order is still FIFO.
  EXPECT_EQ(q.tenant_depth(2), 0u);
}

TEST(AdmissionQueueQos, PriorityDominatesFairness) {
  AdmissionQueue<int> q(16, OverloadPolicy::Reject);
  q.set_tenant_weight(2, 100);  // enormous weight...
  ASSERT_EQ(q.push(20, 0, 2), Admission::Admitted);
  ASSERT_EQ(q.push(21, 0, 2), Admission::Admitted);
  ASSERT_EQ(q.push(10, 5, 1), Admission::Admitted);  // ...but low priority
  int v = 0;
  ASSERT_EQ(q.pop(v), PopResult::Item);
  EXPECT_EQ(v, 10);  // strict priority first, weights only within a band
  ASSERT_EQ(q.pop(v), PopResult::Item);
  EXPECT_EQ(v, 20);
}

TEST(AdmissionQueueQos, SingleTenantOrderMatchesLegacyQueue) {
  // Untagged traffic (all tenant 0) must behave exactly like the old
  // global (priority desc, FIFO) queue.
  AdmissionQueue<int> q(16, OverloadPolicy::Reject);
  ASSERT_EQ(q.push(1, 0), Admission::Admitted);
  ASSERT_EQ(q.push(2, 3), Admission::Admitted);
  ASSERT_EQ(q.push(3, 3), Admission::Admitted);
  ASSERT_EQ(q.push(4, 1), Admission::Admitted);
  int v = 0;
  std::vector<int> order;
  while (q.depth() > 0) {
    ASSERT_EQ(q.pop(v), PopResult::Item);
    order.push_back(v);
  }
  EXPECT_EQ(order, (std::vector<int>{2, 3, 4, 1}));
}

// --- weighted shed ---------------------------------------------------------

TEST(AdmissionQueueQos, ShedVictimIsTenantMostOverFairShare) {
  AdmissionQueue<int> q(4, OverloadPolicy::ShedOldest);
  q.set_tenant_weight(1, 1);
  q.set_tenant_weight(2, 3);
  std::vector<int> shed;
  q.set_shed_handler([&](int&& v) { shed.push_back(v); });
  ASSERT_EQ(q.push(1001, 0, 1), Admission::Admitted);
  ASSERT_EQ(q.push(1002, 0, 1), Admission::Admitted);
  ASSERT_EQ(q.push(1003, 0, 1), Admission::Admitted);
  ASSERT_EQ(q.push(2001, 0, 2), Admission::Admitted);
  // Full. Tenant 1 sits at 3/1 = 3.0 over-share, tenant 2 at 1/3 = 0.33:
  // the next push evicts tenant 1's oldest, not the globally... (here it
  // is also globally oldest; push tenant-2 first in the next case).
  ASSERT_EQ(q.push(2002, 0, 2), Admission::Admitted);
  ASSERT_EQ(shed, (std::vector<int>{1001}));
  EXPECT_EQ(q.tenant_depth(1), 2u);
  EXPECT_EQ(q.tenant_depth(2), 2u);

  // Now tenant 2's entry is globally oldest, but tenant 1 is still the
  // one most over its share — the victim stays tenant 1.
  ASSERT_EQ(q.push(2003, 0, 2), Admission::Admitted);
  ASSERT_EQ(shed.size(), 2u);
  EXPECT_EQ(shed[1], 1002);
  EXPECT_EQ(q.shed(), 2u);
}

// --- result-cache byte quotas ---------------------------------------------

TEST(ResultCacheQos, TenantBudgetEvictsOwnOldestEntries) {
  ResultCache<int> c(100);
  c.set_tenant_budget(1, 10);
  c.put(101, 1, /*tenant=*/1, /*bytes=*/4);
  c.put(102, 2, 1, 4);
  EXPECT_EQ(c.tenant_bytes(1), 8u);
  c.put(103, 3, 1, 4);  // 12 bytes > 10: evict tenant 1's oldest (101)
  EXPECT_EQ(c.tenant_bytes(1), 8u);
  EXPECT_EQ(c.tenant_evictions(), 1u);
  int out = 0;
  EXPECT_FALSE(c.get(101, &out));
  EXPECT_TRUE(c.get(102, &out));
  EXPECT_TRUE(c.get(103, &out));
}

TEST(ResultCacheQos, HotTenantChurnLeavesQuietTenantEntriesAlone) {
  ResultCache<int> c(100);
  c.set_tenant_budget(1, 16);
  c.put(900, 9, /*tenant=*/2, /*bytes=*/4);  // quiet tenant, no budget
  for (int i = 0; i < 50; ++i) c.put(100 + i, i, 1, 4);  // hot churn
  EXPECT_LE(c.tenant_bytes(1), 16u);
  EXPECT_GT(c.tenant_evictions(), 0u);
  int out = 0;
  EXPECT_TRUE(c.get(900, &out));  // never evicted by tenant 1's quota
  EXPECT_EQ(out, 9);
  EXPECT_EQ(c.tenant_bytes(2), 4u);
}

TEST(ResultCacheQos, ValueLargerThanBudgetIsNotRetained) {
  ResultCache<int> c(100);
  c.set_tenant_budget(1, 10);
  c.put(101, 1, 1, /*bytes=*/64);
  int out = 0;
  EXPECT_FALSE(c.get(101, &out));
  EXPECT_EQ(c.tenant_bytes(1), 0u);
}

TEST(ResultCacheQos, EntriesAreSharedAcrossTenants) {
  // Same content hash: one entry, whoever filled it last owns the bytes.
  ResultCache<int> c(100);
  c.put(42, 7, /*tenant=*/1, /*bytes=*/8);
  int out = 0;
  EXPECT_TRUE(c.get(42, &out));  // tenant 2 probes the same key: hit
  EXPECT_EQ(out, 7);
  c.put(42, 7, /*tenant=*/2, /*bytes=*/8);  // refresh transfers ownership
  EXPECT_EQ(c.tenant_bytes(1), 0u);
  EXPECT_EQ(c.tenant_bytes(2), 8u);
  EXPECT_EQ(c.size(), 1u);
}

// --- service-level throttle ------------------------------------------------

Request chain_request(std::uint16_t tenant, std::uint64_t seed) {
  Request r;
  ChainSpec c;
  c.n = 8;
  c.seed = seed;
  r.payload = c;
  r.tenant = tenant;
  return r;
}

TEST(ServiceQos, TokenBucketThrottleRespondsRetryAfterWithHint) {
  ServiceOptions so;
  so.workers = 1;
  so.queue_capacity = 16;
  std::string err;
  // Tenant 1: one request per *very* long while, burst 1 — the second
  // submit inside this test must be throttled.
  ASSERT_TRUE(parse_tenant_spec("1:name=limited:rate=0.001:burst=1",
                                &so.tenants, &err))
      << err;
  SolveService svc(so);
  auto f1 = svc.submit(chain_request(1, 1));
  const Response r1 = f1.get();
  EXPECT_TRUE(is_success(r1.status)) << status_name(r1.status);

  auto f2 = svc.submit(chain_request(1, 2));
  const Response r2 = f2.get();
  EXPECT_EQ(r2.status, Status::RetryAfter);
  EXPECT_GT(r2.retry_after_ms, 0);
  EXPECT_NE(r2.detail.find("limited"), std::string::npos) << r2.detail;

  // Unthrottled tenants (0 and unconfigured ones) sail through.
  auto f3 = svc.submit(chain_request(0, 3));
  EXPECT_TRUE(is_success(f3.get().status));
  auto f4 = svc.submit(chain_request(2, 4));
  EXPECT_TRUE(is_success(f4.get().status));

  svc.stop();
  const ServiceStats st = svc.stats();
  EXPECT_EQ(st.throttled, 1u);
  EXPECT_EQ(st.retry_after, 1u);  // the throttle IS the RetryAfter
  EXPECT_EQ(st.responded(), st.submitted);

  // Per-tenant rows: tenant 1 configured + active, tenants 0 and 2 active.
  bool saw1 = false, saw0 = false, saw2 = false;
  for (const TenantStats& row : st.tenants) {
    if (row.id == 1) {
      saw1 = true;
      EXPECT_EQ(row.name, "limited");
      EXPECT_EQ(row.submitted, 2u);
      EXPECT_EQ(row.throttled, 1u);
    }
    if (row.id == 0) saw0 = row.submitted == 1;
    if (row.id == 2) saw2 = row.submitted == 1;
  }
  EXPECT_TRUE(saw1);
  EXPECT_TRUE(saw0);
  EXPECT_TRUE(saw2);
}

TEST(ServiceQos, OutOfRangeTenantIsRejectedAtAdmission) {
  ServiceOptions so;
  so.workers = 1;
  SolveService svc(so);
  Request r = chain_request(0, 1);
  r.tenant = kMaxTenants;  // bypasses parse/wire validation on purpose
  const Response resp = svc.submit(std::move(r)).get();
  EXPECT_EQ(resp.status, Status::Rejected);
  svc.stop();
}

}  // namespace
}  // namespace cellnpdp::serve
