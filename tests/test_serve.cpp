// Tests for the src/serve subsystem: admission-queue ordering and overload
// policies, the batcher, the LRU result cache, solver-pool arena reuse,
// request-line parsing, ThreadPool exception propagation, and the service
// end to end (correctness vs the direct solver, cache hits, deadline
// shedding, priority dispatch, shutdown with in-flight work).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <stdexcept>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "apps/matrix_chain/matrix_chain.hpp"
#include "apps/optimal_bst/optimal_bst.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/solve.hpp"
#include "resilience/circuit_breaker.hpp"
#include "serve/batcher.hpp"
#include "serve/queue.hpp"
#include "serve/request.hpp"
#include "serve/response.hpp"
#include "serve/result_cache.hpp"
#include "serve/service.hpp"
#include "serve/solver_pool.hpp"

namespace cellnpdp::serve {
namespace {

using std::chrono::milliseconds;

Request solve_request(index_t n, std::uint64_t seed, index_t block = 32) {
  Request r;
  SolveSpec s;
  s.n = n;
  s.seed = seed;
  s.block_side = block;
  r.payload = s;
  return r;
}

Request fold_request(index_t random_n, std::uint64_t seed) {
  Request r;
  FoldSpec f;
  f.random_n = random_n;
  f.seed = seed;
  r.payload = f;
  return r;
}

/// Ground truth for a solve request: the library's own blocked solver.
float direct_solve_value(index_t n, std::uint64_t seed, index_t block) {
  NpdpInstance<float> inst;
  inst.n = n;
  inst.init = [seed](index_t i, index_t j) {
    return random_init_value<float>(seed, i, j);
  };
  NpdpOptions opts;
  opts.block_side = block;
  return solve_blocked_serial(inst, opts).at(0, n - 1);
}

// --- AdmissionQueue --------------------------------------------------------

TEST(AdmissionQueue, PopsPriorityDescendingThenFifo) {
  AdmissionQueue<int> q(16, OverloadPolicy::Reject);
  EXPECT_EQ(q.push(10, 0), Admission::Admitted);
  EXPECT_EQ(q.push(20, 5), Admission::Admitted);
  EXPECT_EQ(q.push(21, 5), Admission::Admitted);
  EXPECT_EQ(q.push(30, 1), Admission::Admitted);
  int v = 0;
  ASSERT_EQ(q.pop(v), PopResult::Item);
  EXPECT_EQ(v, 20);  // highest priority
  ASSERT_EQ(q.pop(v), PopResult::Item);
  EXPECT_EQ(v, 21);  // same priority: FIFO
  ASSERT_EQ(q.pop(v), PopResult::Item);
  EXPECT_EQ(v, 30);
  ASSERT_EQ(q.pop(v), PopResult::Item);
  EXPECT_EQ(v, 10);
  EXPECT_EQ(q.depth(), 0u);
  EXPECT_EQ(q.admitted(), 4u);
}

TEST(AdmissionQueue, RejectPolicyRejectsOnlyWhileFull) {
  AdmissionQueue<int> q(2, OverloadPolicy::Reject);
  EXPECT_EQ(q.push(1), Admission::Admitted);
  EXPECT_EQ(q.push(2), Admission::Admitted);
  EXPECT_EQ(q.push(3), Admission::Rejected);
  int v = 0;
  ASSERT_EQ(q.pop(v), PopResult::Item);
  EXPECT_EQ(q.push(4), Admission::Admitted);  // space freed
  EXPECT_EQ(q.rejected(), 1u);
}

TEST(AdmissionQueue, BlockPolicyAppliesBackpressure) {
  AdmissionQueue<int> q(1, OverloadPolicy::Block);
  ASSERT_EQ(q.push(1), Admission::Admitted);
  std::atomic<bool> second_admitted{false};
  std::thread producer([&] {
    EXPECT_EQ(q.push(2), Admission::Admitted);
    second_admitted.store(true);
  });
  std::this_thread::sleep_for(milliseconds(20));
  EXPECT_FALSE(second_admitted.load());  // still blocked on the full queue
  int v = 0;
  ASSERT_EQ(q.pop(v), PopResult::Item);
  EXPECT_EQ(v, 1);
  producer.join();
  EXPECT_TRUE(second_admitted.load());
  ASSERT_EQ(q.pop(v), PopResult::Item);
  EXPECT_EQ(v, 2);
}

TEST(AdmissionQueue, ShedOldestEvictsGloballyOldestEntry) {
  AdmissionQueue<int> q(2, OverloadPolicy::ShedOldest);
  std::vector<int> shed;
  q.set_shed_handler([&](int&& v) { shed.push_back(v); });
  // Admission order decides the victim, not priority.
  ASSERT_EQ(q.push(1, 9), Admission::Admitted);
  ASSERT_EQ(q.push(2, 0), Admission::Admitted);
  ASSERT_EQ(q.push(3, 0), Admission::Admitted);  // full: evicts 1
  EXPECT_EQ(shed, std::vector<int>({1}));
  EXPECT_EQ(q.shed(), 1u);
  int v = 0;
  ASSERT_EQ(q.pop(v), PopResult::Item);
  EXPECT_EQ(v, 2);
  ASSERT_EQ(q.pop(v), PopResult::Item);
  EXPECT_EQ(v, 3);
}

TEST(AdmissionQueue, ShedHandlerMayRePushWithoutDeadlockOrRecursion) {
  // Regression test for the handler reentrancy contract (queue.hpp): a
  // shed handler that pushes back into the same full queue must neither
  // deadlock (the handler runs with the lock released) nor recurse
  // unboundedly (cascading evictions drain iteratively via the backlog).
  AdmissionQueue<int> q(2, OverloadPolicy::ShedOldest);
  std::vector<int> shed;
  int depth = 0, max_depth = 0;
  q.set_shed_handler([&](int&& v) {
    ++depth;
    if (depth > max_depth) max_depth = depth;
    shed.push_back(v);
    // Re-push the original victims; each re-push into the full queue
    // evicts another entry, so this would recurse without the backlog.
    if (v < 100)
      EXPECT_EQ(q.push(v + 100, 0), Admission::Admitted);
    --depth;
  });
  ASSERT_EQ(q.push(1, 0), Admission::Admitted);
  ASSERT_EQ(q.push(2, 0), Admission::Admitted);
  // Full. This push evicts 1; the handler re-pushes 101, evicting 2,
  // whose handler re-pushes 102, evicting 3 (the entry just admitted)...
  // the cascade ends when a re-pushed (>= 100) victim is not re-pushed.
  ASSERT_EQ(q.push(3, 0), Admission::Admitted);
  EXPECT_EQ(max_depth, 1);              // never nested
  EXPECT_EQ(q.depth(), 2u);             // still exactly at capacity
  EXPECT_GE(shed.size(), 3u);           // 1, 2, and at least one more
  EXPECT_EQ(shed[0], 1);
  EXPECT_EQ(shed[1], 2);
  EXPECT_EQ(q.shed(), shed.size());     // every eviction was delivered
  // The queue still works normally afterwards.
  int v = 0;
  ASSERT_EQ(q.pop(v), PopResult::Item);
  ASSERT_EQ(q.pop(v), PopResult::Item);
  EXPECT_EQ(q.depth(), 0u);
}

TEST(AdmissionQueue, ExpiredHeadEntriesGoToTheHandler) {
  AdmissionQueue<int> q(8, OverloadPolicy::Reject);
  std::vector<int> dead;
  q.set_expiry([](const int& v) { return v % 2 == 1; },
               [&](int&& v) { dead.push_back(v); });
  for (int v : {1, 2, 3, 4}) ASSERT_EQ(q.push(v), Admission::Admitted);
  int v = 0;
  ASSERT_EQ(q.pop(v), PopResult::Item);
  EXPECT_EQ(v, 2);
  ASSERT_EQ(q.pop(v), PopResult::Item);
  EXPECT_EQ(v, 4);
  EXPECT_EQ(dead, std::vector<int>({1, 3}));
  EXPECT_EQ(q.expired(), 2u);
  EXPECT_EQ(q.pop_wait_for(v, milliseconds(1)), PopResult::TimedOut);
}

TEST(AdmissionQueue, CloseDrainsRemainingEntriesThenReportsClosed) {
  AdmissionQueue<int> q(4, OverloadPolicy::Reject);
  ASSERT_EQ(q.push(7), Admission::Admitted);
  q.close();
  EXPECT_EQ(q.push(8), Admission::Closed);
  int v = 0;
  ASSERT_EQ(q.pop(v), PopResult::Item);
  EXPECT_EQ(v, 7);
  EXPECT_EQ(q.pop(v), PopResult::Closed);
}

TEST(AdmissionQueue, CloseWakesABlockedProducer) {
  AdmissionQueue<int> q(1, OverloadPolicy::Block);
  ASSERT_EQ(q.push(1), Admission::Admitted);
  std::atomic<int> result{-1};
  std::thread producer(
      [&] { result.store(static_cast<int>(q.push(2))); });
  std::this_thread::sleep_for(milliseconds(10));
  q.close();
  producer.join();
  EXPECT_EQ(result.load(), static_cast<int>(Admission::Closed));
}

// --- Batcher ---------------------------------------------------------------

TEST(Batcher, FlushesAtMaxBatchPerKeyAndDrainsPartials) {
  Batcher<int> b(3);
  EXPECT_TRUE(b.add(1, 10).items.empty());
  EXPECT_TRUE(b.add(2, 20).items.empty());
  EXPECT_TRUE(b.add(1, 11).items.empty());
  EXPECT_EQ(b.pending(), 3u);
  const Batch<int> full = b.add(1, 12);
  EXPECT_EQ(full.key, 1u);
  EXPECT_EQ(full.items, std::vector<int>({10, 11, 12}));
  EXPECT_EQ(b.pending(), 1u);
  const auto rest = b.drain();
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(rest[0].key, 2u);
  EXPECT_EQ(rest[0].items, std::vector<int>({20}));
  EXPECT_EQ(b.pending(), 0u);
  EXPECT_TRUE(b.drain().empty());
}

// --- ResultCache -----------------------------------------------------------

TEST(ResultCache, HitsPromoteAndCapacityEvictsLeastRecent) {
  ResultCache<int> c(2);
  int v = 0;
  EXPECT_FALSE(c.get(1, &v));  // cold miss
  c.put(1, 100);
  c.put(2, 200);
  EXPECT_TRUE(c.get(1, &v));  // promotes 1 over 2
  EXPECT_EQ(v, 100);
  c.put(3, 300);  // evicts 2, the least recently used
  EXPECT_FALSE(c.get(2, &v));
  EXPECT_TRUE(c.get(1, &v));
  EXPECT_TRUE(c.get(3, &v));
  EXPECT_EQ(v, 300);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c.hits(), 3u);
  EXPECT_EQ(c.misses(), 2u);
  EXPECT_EQ(c.evictions(), 1u);
}

TEST(ResultCache, PutRefreshesAnExistingKey) {
  ResultCache<int> c(4);
  c.put(1, 100);
  c.put(1, 101);
  int v = 0;
  EXPECT_TRUE(c.get(1, &v));
  EXPECT_EQ(v, 101);
  EXPECT_EQ(c.size(), 1u);
}

TEST(ResultCache, ZeroCapacityDisablesCaching) {
  ResultCache<int> c(0);
  c.put(1, 100);
  int v = 0;
  EXPECT_FALSE(c.get(1, &v));
  EXPECT_EQ(c.size(), 0u);
}

// --- ThreadPool exception propagation --------------------------------------

TEST(ThreadPoolErrors, WaitIdleRethrowsTheFirstJobException) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("boom"); });
  try {
    pool.wait_idle();
    FAIL() << "wait_idle should have rethrown";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
  // The pool stays healthy and reusable after the rethrow.
  std::atomic<int> ran{0};
  pool.submit([&] { ++ran; });
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPoolErrors, OtherJobsStillRunAndLaterWaitsAreClean) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) pool.submit([&] { ++ran; });
  pool.submit([] { throw std::runtime_error("x"); });
  for (int i = 0; i < 8; ++i) pool.submit([&] { ++ran; });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  EXPECT_EQ(ran.load(), 16);  // a throwing job never blocks the others
  pool.wait_idle();           // the error was consumed by the first wait
}

// --- SolverPool ------------------------------------------------------------

TEST(SolverPool, SolveMatchesTheDirectBlockedSolver) {
  SolverPool pool(1);
  const SolveOutcome o = pool.execute(solve_request(96, 5));
  ASSERT_TRUE(o.ok) << o.error;
  EXPECT_FALSE(o.arena_reused);
  EXPECT_EQ(static_cast<float>(o.value), direct_solve_value(96, 5, 32));
}

TEST(SolverPool, ReusedArenaGivesIdenticalResults) {
  SolverPool pool(1);
  const SolveOutcome first = pool.execute(solve_request(64, 1));
  const SolveOutcome again = pool.execute(solve_request(64, 1));
  ASSERT_TRUE(first.ok && again.ok);
  EXPECT_FALSE(first.arena_reused);
  EXPECT_TRUE(again.arena_reused);
  EXPECT_EQ(first.value, again.value);
  EXPECT_EQ(pool.arena_allocations(), 1u);
  EXPECT_EQ(pool.arena_reuses(), 1u);
  // A different instance on the same shape must not see stale state.
  const SolveOutcome other = pool.execute(solve_request(64, 2));
  ASSERT_TRUE(other.ok) << other.error;
  EXPECT_TRUE(other.arena_reused);
  EXPECT_EQ(static_cast<float>(other.value), direct_solve_value(64, 2, 32));
}

TEST(SolverPool, FoldAndParseRequestsExecute) {
  SolverPool pool(1);
  Request f = fold_request(60, 3);
  const SolveOutcome of = pool.execute(f);
  ASSERT_TRUE(of.ok) << of.error;
  EXPECT_FALSE(of.detail.empty());  // dot-bracket structure

  Request p;
  ParseSpec ps;
  ps.grammar = ParseSpec::GrammarKind::Parens;
  ps.text = "(()())";
  p.payload = ps;
  const SolveOutcome accepted = pool.execute(p);
  ASSERT_TRUE(accepted.ok) << accepted.error;
  EXPECT_EQ(accepted.detail, "accepted");

  ps.text = "(()";
  p.payload = ps;
  const SolveOutcome rejected = pool.execute(p);
  ASSERT_TRUE(rejected.ok) << rejected.error;
  EXPECT_EQ(rejected.detail, "rejected");
  EXPECT_EQ(rejected.value, -1.0);
}

TEST(SolverPool, SolverExceptionsBecomeErrorOutcomes) {
  SolverPool pool(1);
  const SolveOutcome o = pool.execute(solve_request(0, 1));
  EXPECT_FALSE(o.ok);
  EXPECT_FALSE(o.error.empty());
}

// --- request parsing and hashing -------------------------------------------

TEST(RequestParsing, ParsesAFullSolveLine) {
  Request r;
  std::string err;
  const Clock::time_point now = Clock::now();
  ASSERT_TRUE(parse_request_line(
      "solve n=128 seed=9 block=32 kernel=scalar id=4 priority=2 "
      "deadline-ms=50",
      &r, &err, now))
      << err;
  ASSERT_TRUE(std::holds_alternative<SolveSpec>(r.payload));
  const auto& s = std::get<SolveSpec>(r.payload);
  EXPECT_EQ(s.n, 128);
  EXPECT_EQ(s.seed, 9u);
  EXPECT_EQ(s.block_side, 32);
  EXPECT_EQ(s.kernel, KernelKind::Scalar);
  EXPECT_EQ(r.id, 4u);
  EXPECT_EQ(r.priority, 2);
  ASSERT_TRUE(r.has_deadline());
  EXPECT_EQ(r.deadline, now + milliseconds(50));
}

TEST(RequestParsing, ParsesSemiringAndDefaultsToMinPlus) {
  Request r;
  std::string err;
  // Lines that never mention a semiring keep the min-plus default.
  ASSERT_TRUE(parse_request_line("solve n=64", &r, &err)) << err;
  EXPECT_EQ(std::get<SolveSpec>(r.payload).semiring, SemiringId::MinPlus);
  ASSERT_TRUE(parse_request_line("solve n=64 semiring=max-plus", &r, &err))
      << err;
  EXPECT_EQ(std::get<SolveSpec>(r.payload).semiring, SemiringId::MaxPlus);
  ASSERT_TRUE(parse_request_line("solve n=64 semiring=counting", &r, &err))
      << err;
  EXPECT_EQ(std::get<SolveSpec>(r.payload).semiring, SemiringId::Counting);
  ASSERT_TRUE(parse_request_line("solve n=64 semiring=viterbi-log", &r, &err))
      << err;
  EXPECT_EQ(std::get<SolveSpec>(r.payload).semiring, SemiringId::ViterbiLog);
  EXPECT_FALSE(parse_request_line("solve n=64 semiring=tropical", &r, &err));
  EXPECT_NE(err.find("semiring"), std::string::npos) << err;
}

TEST(RequestParsing, ParsesFoldAndParseLines) {
  Request r;
  std::string err;
  ASSERT_TRUE(parse_request_line("fold seq=ACGUACGU", &r, &err)) << err;
  EXPECT_EQ(std::get<FoldSpec>(r.payload).seq, "ACGUACGU");
  ASSERT_TRUE(parse_request_line("fold random=120 seed=3", &r, &err)) << err;
  EXPECT_EQ(std::get<FoldSpec>(r.payload).random_n, 120);
  ASSERT_TRUE(parse_request_line("parse anbn=aabb", &r, &err)) << err;
  EXPECT_EQ(std::get<ParseSpec>(r.payload).grammar,
            ParseSpec::GrammarKind::Anbn);
  EXPECT_EQ(std::get<ParseSpec>(r.payload).text, "aabb");
}

TEST(RequestParsing, RejectsMalformedLines) {
  Request r;
  std::string err;
  EXPECT_FALSE(parse_request_line("solve n=64 n=64", &r, &err));
  EXPECT_NE(err.find("duplicate"), std::string::npos);
  EXPECT_FALSE(parse_request_line("frobnicate n=4", &r, &err));
  EXPECT_FALSE(parse_request_line("solve n=abc", &r, &err));
  EXPECT_FALSE(parse_request_line("solve n=0", &r, &err));
  EXPECT_FALSE(parse_request_line("solve kernel=avx1024", &r, &err));
  EXPECT_FALSE(parse_request_line("solve frob=1", &r, &err));
  EXPECT_FALSE(parse_request_line("parse", &r, &err));
}

TEST(RequestHashing, ContentHashIgnoresIdPriorityAndDeadline) {
  Request a = solve_request(128, 7);
  Request b = solve_request(128, 7);
  b.id = 99;
  b.priority = 3;
  b.deadline = Clock::now() + milliseconds(100);
  EXPECT_EQ(content_hash(a), content_hash(b));
  EXPECT_NE(content_hash(a), content_hash(solve_request(128, 8)));
  // Shape keys ignore the seed: same geometry batches together.
  EXPECT_EQ(shape_key(a), shape_key(solve_request(128, 8)));
  EXPECT_NE(shape_key(a), shape_key(solve_request(256, 7)));
}

// --- SolveService end to end -----------------------------------------------

TEST(SolveService, SolvesMatchDirectSolverAndRepeatsHitTheCache) {
  ServiceOptions so;
  so.workers = 2;
  SolveService svc(so);
  Request r = solve_request(96, 11);
  r.id = 1;
  const Response a = svc.submit(r).get();
  ASSERT_EQ(a.status, Status::Ok) << a.detail;
  EXPECT_EQ(a.id, 1u);
  EXPECT_EQ(static_cast<float>(a.value), direct_solve_value(96, 11, 32));
  EXPECT_GT(a.total_ns, 0);

  r.id = 2;  // identical content: must come out of the cache
  const Response b = svc.submit(r).get();
  EXPECT_EQ(b.status, Status::OkCached);
  EXPECT_EQ(b.id, 2u);
  EXPECT_EQ(b.value, a.value);

  svc.stop();
  const ServiceStats st = svc.stats();
  EXPECT_EQ(st.submitted, 2u);
  EXPECT_EQ(st.completed, 1u);
  EXPECT_EQ(st.cache_hits, 1u);
  EXPECT_EQ(st.responded(), st.submitted);
}

TEST(SolveService, MixedWorkloadAllSucceedWithArenaReuseAndBatching) {
  ServiceOptions so;
  so.workers = 2;
  so.batch_max = 4;
  SolveService svc(so);
  std::vector<std::future<Response>> futs;
  for (std::uint64_t seed = 1; seed <= 10; ++seed)
    futs.push_back(svc.submit(solve_request(64, seed)));
  futs.push_back(svc.submit(fold_request(80, 1)));
  Request p;
  ParseSpec ps;
  ps.text = "((()))";
  p.payload = ps;
  futs.push_back(svc.submit(p));
  for (auto& f : futs) {
    const Response resp = f.get();
    EXPECT_TRUE(is_success(resp.status)) << status_name(resp.status);
  }
  svc.stop();
  const ServiceStats st = svc.stats();
  EXPECT_EQ(st.responded(), st.submitted);
  EXPECT_EQ(st.rejected + st.shed + st.expired + st.errors, 0u);
  EXPECT_GE(st.batches, 1u);
  EXPECT_GT(st.arena_reuses, 0u);  // ten same-shape solves share arenas
}

TEST(SolveService, ExpiredDeadlinesAreShedWithoutSolving) {
  ServiceOptions so;
  so.workers = 1;
  SolveService svc(so);
  Request r = solve_request(64, 1);
  r.deadline = Clock::now() - milliseconds(1);  // already dead
  const Response resp = svc.submit(r).get();
  EXPECT_EQ(resp.status, Status::Expired);
  svc.stop();
  EXPECT_EQ(svc.stats().expired, 1u);
  EXPECT_EQ(svc.stats().completed, 0u);
}

TEST(SolveService, RejectPolicyShedsBurstsButAnswersEveryRequest) {
  ServiceOptions so;
  so.workers = 1;
  so.queue_capacity = 1;
  so.policy = OverloadPolicy::Reject;
  so.batch_max = 1;  // max_inflight == 2: backlog reaches the queue fast
  SolveService svc(so);
  std::vector<std::future<Response>> futs;
  // Fill the worker, the in-flight window, and the one queue slot...
  for (std::uint64_t seed = 1; seed <= 3; ++seed)
    futs.push_back(svc.submit(fold_request(200, seed)));
  std::this_thread::sleep_for(milliseconds(20));
  // ...then burst: the queue is full, so Reject fires.
  for (std::uint64_t seed = 100; seed < 108; ++seed)
    futs.push_back(svc.submit(fold_request(200, seed)));
  std::uint64_t rejected = 0;
  for (auto& f : futs) {
    const Response resp = f.get();
    if (resp.status == Status::Rejected) ++rejected;
    EXPECT_TRUE(resp.status == Status::Rejected || resp.status == Status::Ok)
        << status_name(resp.status);
  }
  EXPECT_GT(rejected, 0u);
  svc.stop();
  EXPECT_EQ(svc.stats().responded(), svc.stats().submitted);
}

TEST(SolveService, ShedOldestPolicyEvictsButAnswersEveryRequest) {
  ServiceOptions so;
  so.workers = 1;
  so.queue_capacity = 1;
  so.policy = OverloadPolicy::ShedOldest;
  so.batch_max = 1;
  SolveService svc(so);
  std::vector<std::future<Response>> futs;
  for (std::uint64_t seed = 1; seed <= 3; ++seed)
    futs.push_back(svc.submit(fold_request(200, seed)));
  std::this_thread::sleep_for(milliseconds(20));
  for (std::uint64_t seed = 100; seed < 108; ++seed)
    futs.push_back(svc.submit(fold_request(200, seed)));
  std::uint64_t shed = 0;
  for (auto& f : futs) {
    const Response resp = f.get();
    if (resp.status == Status::Shed) ++shed;
  }
  EXPECT_GT(shed, 0u);
  svc.stop();
  EXPECT_EQ(svc.stats().shed, shed);
  EXPECT_EQ(svc.stats().responded(), svc.stats().submitted);
}

TEST(SolveService, HigherPriorityRequestsAreDispatchedFirst) {
  // The queue-level ordering guarantee is covered deterministically above;
  // this checks it end to end. Scheduling noise can perturb the saturation
  // setup under heavy machine load, so the scenario retries a few times.
  bool ordered = false;
  for (int attempt = 0; attempt < 3 && !ordered; ++attempt) {
    ServiceOptions so;
    so.workers = 1;
    so.batch_max = 1;
    SolveService svc(so);
    std::vector<std::future<Response>> blockers;
    // Saturate the worker and the in-flight window (plus the one request
    // the dispatcher holds while waiting), so later submissions queue up.
    for (std::uint64_t seed = 1; seed <= 3; ++seed)
      blockers.push_back(svc.submit(fold_request(240, seed)));
    for (int i = 0; i < 1000 && svc.stats().queue_depth > 0; ++i)
      std::this_thread::sleep_for(milliseconds(1));
    // These sit in the queue together; pops must follow priority.
    std::vector<std::future<Response>> futs;
    for (int prio = 1; prio <= 4; ++prio) {
      Request r = fold_request(100, 50 + static_cast<std::uint64_t>(prio));
      r.priority = prio;
      futs.push_back(svc.submit(r));
    }
    std::vector<std::int64_t> queue_ns;
    for (auto& f : futs) {
      const Response resp = f.get();
      EXPECT_EQ(resp.status, Status::Ok);
      queue_ns.push_back(resp.queue_ns);
    }
    svc.stop();
    // Higher priority -> picked up earlier -> smaller queue wait.
    ordered = queue_ns[3] < queue_ns[2] && queue_ns[2] < queue_ns[1] &&
              queue_ns[1] < queue_ns[0];
  }
  EXPECT_TRUE(ordered);
}

TEST(SolveService, StopWithDrainCompletesEverything) {
  ServiceOptions so;
  so.workers = 2;
  SolveService svc(so);
  std::vector<std::future<Response>> futs;
  for (std::uint64_t seed = 1; seed <= 12; ++seed)
    futs.push_back(svc.submit(solve_request(64, seed)));
  svc.stop(true);  // drain: every admitted request still gets solved
  for (auto& f : futs) EXPECT_TRUE(is_success(f.get().status));
  const ServiceStats st = svc.stats();
  EXPECT_EQ(st.responded(), 12u);
  EXPECT_EQ(st.cancelled + st.rejected + st.shed + st.errors, 0u);
}

TEST(SolveService, StopWithoutDrainCancelsQueuedButFinishesInflight) {
  ServiceOptions so;
  so.workers = 1;
  so.batch_max = 1;
  SolveService svc(so);
  std::vector<std::future<Response>> futs;
  for (std::uint64_t seed = 1; seed <= 8; ++seed)
    futs.push_back(svc.submit(fold_request(180, seed)));
  std::this_thread::sleep_for(milliseconds(5));
  svc.stop(false);
  svc.stop(false);  // idempotent
  std::uint64_t ok = 0, cancelled = 0;
  for (auto& f : futs) {
    const Response resp = f.get();  // every future resolves, no hang
    if (resp.status == Status::Ok) ++ok;
    if (resp.status == Status::Cancelled) ++cancelled;
    EXPECT_TRUE(resp.status == Status::Ok || resp.status == Status::Cancelled)
        << status_name(resp.status);
  }
  EXPECT_GE(ok, 1u);         // in-flight work ran to completion
  EXPECT_GE(cancelled, 1u);  // queued work was answered, not solved
  EXPECT_EQ(svc.stats().responded(), 8u);
  // Submitting after stop rejects instead of hanging.
  const Response late = svc.submit(solve_request(64, 99)).get();
  EXPECT_EQ(late.status, Status::Rejected);
}

// --- callback-form submit (the network front-end's path) -------------------

TEST(SolveService, CallbackSubmitDeliversExactlyOneResponse) {
  ServiceOptions so;
  so.workers = 2;
  SolveService svc(so);
  std::promise<Response> got;
  Request r = solve_request(96, 5);
  r.id = 42;
  svc.submit(std::move(r), [&](Response resp) { got.set_value(resp); });
  const Response resp = got.get_future().get();
  EXPECT_EQ(resp.id, 42u);
  EXPECT_EQ(resp.status, Status::Ok);
  EXPECT_EQ(resp.value, direct_solve_value(96, 5, 32));
  // The effective engine is always named, even when the request left the
  // backend field empty (satellite of the wire protocol: clients see it).
  EXPECT_EQ(resp.backend, so.backend);
  svc.stop();
}

TEST(SolveService, CallbackSubmitAfterStopStillGetsItsCallback) {
  SolveService svc(ServiceOptions{});
  svc.stop();
  // The admission queue is closed now; push returns Closed (documented on
  // AdmissionQueue::push) and the service answers Rejected — the callback
  // must fire anyway, or a network connection would leak its in-flight
  // accounting forever.
  std::promise<Response> got;
  svc.submit(solve_request(64, 6), [&](Response r) { got.set_value(r); });
  auto fut = got.get_future();
  ASSERT_EQ(fut.wait_for(std::chrono::seconds(10)), std::future_status::ready);
  EXPECT_EQ(fut.get().status, Status::Rejected);
}

// --- wire-transportable request kinds vs their references ------------------

TEST(SolveService, ChainRequestsMatchTheTextbookReference) {
  ServiceOptions so;
  so.workers = 2;
  SolveService svc(so);
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    Request r;
    r.payload = ChainSpec{40, seed};
    const Response resp = svc.submit(r).get();
    EXPECT_EQ(resp.status, Status::Ok);
    const auto ref =
        solve_matrix_chain_reference<float>(chain_dims(ChainSpec{40, seed}));
    EXPECT_FLOAT_EQ(float(resp.value), float(ref.cost)) << "seed " << seed;
  }
  svc.stop();
}

TEST(SolveService, BstRequestsMatchTheTextbookReference) {
  ServiceOptions so;
  so.workers = 2;
  SolveService svc(so);
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    Request r;
    r.payload = BstSpec{48, seed};
    const Response resp = svc.submit(r).get();
    EXPECT_EQ(resp.status, Status::Ok);
    const float ref = solve_optimal_bst_reference<float>(
        bst_data(BstSpec{48, seed}));
    EXPECT_NEAR(float(resp.value), ref, 1e-3f) << "seed " << seed;
  }
  svc.stop();
}

// --- effective backend name ------------------------------------------------

TEST(SolveService, ResponseNamesTheBackendThatActuallyRan) {
  resilience::breakers().clear();
  ServiceOptions so;
  so.workers = 1;
  so.resilience.breaker_enabled = true;
  so.resilience.fallback_backend = "reference";
  SolveService svc(so);
  // Healthy path: the configured default is reported.
  const Response ok = svc.submit(solve_request(96, 7)).get();
  EXPECT_EQ(ok.status, Status::Ok);
  EXPECT_EQ(ok.backend, so.backend);
  // Broken primary: the response must name the *fallback* that produced
  // the value, not the backend that was asked for — `npdp serve` and
  // bench-serve surface this as the effective backend.
  resilience::breakers().breaker(so.backend).force_open();
  const Response deg = svc.submit(solve_request(96, 8)).get();
  EXPECT_EQ(deg.status, Status::Degraded);
  EXPECT_EQ(deg.backend, "reference");
  svc.stop();
  resilience::breakers().clear();
}

}  // namespace
}  // namespace cellnpdp::serve
