// Baseline implementations must agree with the Fig. 1 semantics: they are
// the comparators every speedup figure divides by.
#include <gtest/gtest.h>

#include "baselines/recursive_npdp.hpp"
#include "baselines/tan_npdp.hpp"
#include "common/rng.hpp"
#include "core/reference.hpp"
#include "layout/convert.hpp"

namespace cellnpdp {
namespace {

struct TanCase {
  index_t n;
  index_t tile;
  std::size_t threads;
  bool helper;
};

class TanTest : public ::testing::TestWithParam<TanCase> {};

TEST_P(TanTest, MatchesFig1BitExact) {
  const auto& p = GetParam();
  auto init = [](index_t i, index_t j) {
    return random_init_value<float>(99, i, j);
  };
  TriangularMatrix<float> expect(p.n);
  expect.fill(init);
  solve_fig1(expect);

  TriangularMatrix<float> got(p.n);
  got.fill(init);
  TanOptions opts;
  opts.tile = p.tile;
  opts.threads = p.threads;
  opts.helper_prefetch = p.helper;
  solve_tan_npdp(got, opts);
  EXPECT_EQ(max_abs_diff(expect, got), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, TanTest,
    ::testing::Values(TanCase{5, 16, 1, false}, TanCase{40, 16, 1, false},
                      TanCase{64, 16, 1, true}, TanCase{64, 16, 4, false},
                      TanCase{100, 32, 4, true}, TanCase{97, 24, 2, true},
                      TanCase{128, 128, 2, false},  // one tile == whole table
                      TanCase{33, 8, 3, true}),
    [](const auto& info) {
      return "n" + std::to_string(info.param.n) + "_t" +
             std::to_string(info.param.tile) + "_p" +
             std::to_string(info.param.threads) +
             (info.param.helper ? "_helper" : "_nohelper");
    });

TEST(TanTest, RepeatedParallelRunsAreDeterministic) {
  auto init = [](index_t i, index_t j) {
    return random_init_value<double>(5, i, j);
  };
  TriangularMatrix<double> first(120);
  first.fill(init);
  TanOptions opts;
  opts.tile = 32;
  opts.threads = 4;
  solve_tan_npdp(first, opts);
  for (int rep = 0; rep < 3; ++rep) {
    TriangularMatrix<double> again(120);
    again.fill(init);
    solve_tan_npdp(again, opts);
    EXPECT_EQ(max_abs_diff(first, again), 0.0);
  }
}

// --- cache-oblivious recursion (Chowdhury & Ramachandran style) ----------

struct RecCase {
  index_t n;
  index_t base;
};

class RecursiveTest : public ::testing::TestWithParam<RecCase> {};

TEST_P(RecursiveTest, MatchesGoldenModelBitExact) {
  const auto [n, base] = GetParam();
  NpdpInstance<double> inst;
  inst.n = n;
  inst.init = [](index_t i, index_t j) {
    return random_init_value<double>(123, i, j);
  };
  RecursiveOptions opts;
  opts.base = base;
  const auto got = solve_recursive(inst, opts);
  const auto ref = solve_reference(inst);
  EXPECT_EQ(max_abs_diff(ref, got), 0.0) << "n=" << n << " base=" << base;
}

TEST_P(RecursiveTest, HandlesNegativeDiagonalsViaSeedFolding) {
  const auto [n, base] = GetParam();
  NpdpInstance<double> inst;
  inst.n = n;
  inst.init = [](index_t i, index_t j) {
    SplitMix64 rng(9 ^ (static_cast<std::uint64_t>(i) << 20) ^
                   static_cast<std::uint64_t>(j));
    return rng.next_in(-30.0, 70.0);
  };
  RecursiveOptions opts;
  opts.base = base;
  const auto got = solve_recursive(inst, opts);
  const auto ref = solve_reference(inst);
  EXPECT_EQ(max_abs_diff(ref, got), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RecursiveTest,
    ::testing::Values(RecCase{1, 4}, RecCase{2, 4}, RecCase{3, 4},
                      RecCase{17, 4}, RecCase{64, 8}, RecCase{100, 8},
                      RecCase{101, 16}, RecCase{128, 32}, RecCase{130, 2}),
    [](const auto& info) {
      return "n" + std::to_string(info.param.n) + "_b" +
             std::to_string(info.param.base);
    });

TEST(RecursiveTest, BaseSizeDoesNotChangeTheAnswer) {
  NpdpInstance<float> inst;
  inst.n = 120;
  inst.init = [](index_t i, index_t j) {
    return random_init_value<float>(6, i, j);
  };
  const auto a = solve_recursive(inst, {2});
  const auto b = solve_recursive(inst, {16});
  const auto c = solve_recursive(inst, {64});
  EXPECT_EQ(max_abs_diff(a, b), 0.0);
  EXPECT_EQ(max_abs_diff(a, c), 0.0);
}

}  // namespace
}  // namespace cellnpdp
