// Section V performance-model tests, including its headline property
// (size-independent utilization) and cross-validation against the
// discrete-event simulator.
#include <gtest/gtest.h>

#include "cellsim/npdp_sim.hpp"
#include "model/perf_model.hpp"

namespace cellnpdp {
namespace {

ModelParams qs20_sp(double n1) {
  ModelParams p;
  p.n1 = n1;
  p.elem_bytes = 4;
  p.ls_bytes = 256.0 * 1024;
  p.bandwidth = 25.6e9;
  p.clock_hz = 3.2e9;
  p.cores = 16;
  p.n3 = 4;
  p.kernel_cycles = 54;
  p.kernel_ops = 320;
  return p;
}

TEST(Model, BlockSideMatchesSixBufferBudget) {
  const auto p = qs20_sp(4096);
  const double n2 = model_block_side(p);
  // 6 * n2^2 * S == LS
  EXPECT_NEAR(6.0 * n2 * n2 * p.elem_bytes, p.ls_bytes, 1.0);
  // ~104 cells for 256KB/4B — the paper's 32KB block (side ~90) is below.
  EXPECT_NEAR(n2, 104.5, 1.0);
}

TEST(Model, UtilizationIsExactlySizeIndependent) {
  const auto a = qs20_sp(1024);
  const auto b = qs20_sp(65536);
  EXPECT_DOUBLE_EQ(model_utilization(a), model_utilization(b));
}

TEST(Model, KernelUtilizationMatchesPaperArithmetic) {
  // 80 instructions * 4 lanes / 54 cycles / 8 peak = ~74%.
  const auto p = qs20_sp(4096);
  EXPECT_NEAR(model_kernel_utilization(p), 320.0 / (54 * 8), 1e-12);
  EXPECT_GT(model_utilization(p), 0.60) << "the >60% headline";
}

TEST(Model, TimesScaleCubically) {
  const auto a = qs20_sp(2048);
  const auto b = qs20_sp(4096);
  EXPECT_NEAR(model_memory_time(b) / model_memory_time(a), 8.0, 1e-9);
  EXPECT_NEAR(model_compute_time(b) / model_compute_time(a), 8.0, 1e-9);
}

TEST(Model, BiggerLocalStoreLowersMemoryTime) {
  auto small = qs20_sp(4096);
  auto large = qs20_sp(4096);
  small.ls_bytes = 64.0 * 1024;
  large.ls_bytes = 512.0 * 1024;
  EXPECT_GT(model_memory_time(small), model_memory_time(large));
  // Compute time is unaffected by the LS.
  EXPECT_DOUBLE_EQ(model_compute_time(small), model_compute_time(large));
}

TEST(Model, ComputeBoundFlagConsistentWithTimes) {
  for (double cores : {1.0, 2.0, 4.0, 8.0, 16.0, 64.0}) {
    auto p = qs20_sp(4096);
    p.cores = cores;
    EXPECT_EQ(model_compute_bound(p),
              model_memory_time(p) <= model_compute_time(p));
  }
}

TEST(Model, RequiredBandwidthIsTheExactCrossover) {
  auto p = qs20_sp(4096);
  const double breq = model_required_bandwidth(p);
  p.bandwidth = breq * 1.0001;
  EXPECT_TRUE(model_compute_bound(p));
  p.bandwidth = breq * 0.9999;
  EXPECT_FALSE(model_compute_bound(p));
}

TEST(Model, MoreCoresNeedMoreBandwidth) {
  auto p8 = qs20_sp(4096);
  auto p16 = qs20_sp(4096);
  p8.cores = 8;
  p16.cores = 16;
  EXPECT_LT(model_required_bandwidth(p8), model_required_bandwidth(p16));
}

TEST(Model, AgreesWithDiscreteEventSimulatorWithinTolerance) {
  // The closed form ignores scheduling/corner overheads; the simulator
  // includes them. They must still agree on the big picture.
  NpdpInstance<float> inst;
  inst.n = 2048;
  inst.init = [](index_t, index_t) { return 1.0f; };
  CellSimOptions o;
  o.block_side = 64;
  const CellConfig cfg = qs20();
  const auto sim = simulate_cellnpdp(inst, cfg, o);

  auto p = qs20_sp(2048);
  p.n2_override = 64;
  p.kernel_cycles = sim.kernel_cycles;
  const double model_t = model_total_time(p);
  EXPECT_GT(sim.seconds / model_t, 0.7);
  EXPECT_LT(sim.seconds / model_t, 2.0);
}

}  // namespace
}  // namespace cellnpdp
